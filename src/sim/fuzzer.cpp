#include "sim/fuzzer.h"

#include <set>
#include <sstream>

#include "config/canonical.h"

namespace apf::sim {

FuzzResult fuzzSchedules(const Algorithm& algo,
                         const config::Configuration& start,
                         const config::Configuration& pattern,
                         const FuzzOptions& opts) {
  FuzzResult out;
  std::set<config::CanonicalSignature> seen;
  seen.insert(config::canonicalSignature(start));
  const double startSec = start.sec().radius;
  // Multiplicity in the TARGET is intended; anything else is a collision.
  const bool patternHasMultiplicity = pattern.hasMultiplicity();

  const double aggression[] = {0.1, 0.5, 0.9};
  for (int run = 0; run < opts.schedules; ++run) {
    EngineOptions eopts;
    eopts.seed = 0x5eedu + 77u * static_cast<std::uint64_t>(run);
    eopts.maxEvents = opts.maxEventsPerRun;
    eopts.multiplicityDetection = opts.multiplicityDetection;
    eopts.sched.kind = sched::SchedulerKind::Async;
    eopts.sched.delta = opts.delta;
    eopts.sched.earlyStopProb =
        opts.sweepAggression ? aggression[run % 3] : 0.5;
    Engine eng(start, pattern, algo, eopts);

    eng.setObserver([&](const Engine& e, std::size_t robot) {
      seen.insert(config::canonicalSignature(e.positions()));
      if (out.collisionFree && !patternHasMultiplicity &&
          e.positions().hasMultiplicity(geom::Tol{1e-9, 1e-9})) {
        out.collisionFree = false;
        std::ostringstream os;
        os << "collision: run " << run << ", event " << e.metrics().events
           << ", robot " << robot;
        if (out.firstViolation.empty()) out.firstViolation = os.str();
      }
      const double growth = e.positions().sec().radius / startSec;
      out.maxSecGrowthFactor = std::max(out.maxSecGrowthFactor, growth);
      if (out.secBounded && growth > FuzzResult::kSecGrowthBound) {
        out.secBounded = false;
        std::ostringstream os;
        os << "SEC grew x" << growth << ": run " << run << ", event "
           << e.metrics().events;
        if (out.firstViolation.empty()) out.firstViolation = os.str();
      }
    });

    const RunResult res = eng.run();
    ++out.runs;
    out.terminated += res.terminated;
    out.successes += res.success;
  }
  out.distinctConfigurations = seen.size();
  return out;
}

}  // namespace apf::sim
