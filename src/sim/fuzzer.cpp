#include "sim/fuzzer.h"

#include <set>
#include <sstream>

#include "config/canonical.h"

namespace apf::sim {

namespace {

/// Positions of the non-crashed robots (== all robots on clean runs).
config::Configuration livePositions(const Engine& e) {
  const config::Configuration& all = e.positions();
  if (e.crashedCount() == 0) return all;
  std::vector<geom::Vec2> live;
  live.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (!e.isCrashed(i)) live.push_back(all[i]);
  }
  return config::Configuration(std::move(live));
}

fault::FaultPlan planForRun(const FuzzOptions& opts, std::size_t n,
                            std::uint64_t engineSeed) {
  fault::FaultPlan plan;
  if (!opts.faultsRequested()) return plan;
  plan.noiseSigma = opts.noiseSigma;
  plan.omitProb = opts.omitProb;
  plan.multFlipProb = opts.multFlipProb;
  plan.dropProb = opts.dropProb;
  plan.truncProb = opts.truncProb;
  plan.seed = engineSeed;
  if (opts.crashCount > 0) {
    // Re-draw victims and crash timings per run: a campaign should explore
    // many crash interleavings, not one.
    plan.crashes = fault::planWithRandomCrashes(n, opts.crashCount,
                                                engineSeed, opts.crashHorizon)
                       .crashes;
  }
  return plan;
}

}  // namespace

FuzzResult fuzzSchedules(const Algorithm& algo,
                         const config::Configuration& start,
                         const config::Configuration& pattern,
                         const FuzzOptions& opts) {
  FuzzResult out;
  std::set<config::CanonicalSignature> seen;
  seen.insert(config::canonicalSignature(start));
  const double startSec = start.sec().radius;
  // Multiplicity in the TARGET is intended; anything else is a collision.
  const bool patternHasMultiplicity = pattern.hasMultiplicity();

  const double aggression[] = {0.1, 0.5, 0.9};
  for (int run = 0; run < opts.schedules; ++run) {
    EngineOptions eopts;
    eopts.seed = 0x5eedu + 77u * static_cast<std::uint64_t>(run);
    eopts.maxEvents = opts.maxEventsPerRun;
    eopts.multiplicityDetection = opts.multiplicityDetection;
    eopts.sched.kind = sched::SchedulerKind::Async;
    eopts.sched.delta = opts.delta;
    eopts.sched.earlyStopProb =
        opts.sweepAggression ? aggression[run % 3] : 0.5;
    eopts.fault = planForRun(opts, start.size(), eopts.seed);
    Engine eng(start, pattern, algo, eopts);

    std::string violation;  // first violation of THIS run
    eng.setObserver([&](const Engine& e, std::size_t robot) {
      seen.insert(config::canonicalSignature(e.positions()));
      const config::Configuration live = livePositions(e);
      if (live.size() < 2) return;
      if (!patternHasMultiplicity &&
          live.hasMultiplicity(geom::Tol{1e-9, 1e-9})) {
        out.collisionFree = false;
        if (violation.empty()) {
          std::ostringstream os;
          os << "collision: run " << run << ", event " << e.metrics().events
             << ", robot " << robot;
          if (e.crashedCount() > 0) {
            os << " (" << e.crashedCount() << " crashed)";
          }
          violation = os.str();
        }
      }
      const double growth = live.sec().radius / startSec;
      out.maxSecGrowthFactor = std::max(out.maxSecGrowthFactor, growth);
      if (growth > FuzzResult::kSecGrowthBound) {
        out.secBounded = false;
        if (violation.empty()) {
          std::ostringstream os;
          os << "SEC grew x" << growth << ": run " << run << ", event "
             << e.metrics().events;
          violation = os.str();
        }
      }
    });

    const RunResult res = eng.run();
    ++out.runs;
    out.terminated += res.terminated;
    out.successes += res.success;
    out.outcomes[res.outcome] += 1;
    if (!violation.empty()) {
      out.failures.push_back(
          {eopts.seed, eopts.sched.earlyStopProb, violation});
      if (out.firstViolation.empty()) out.firstViolation = violation;
    }
  }
  out.distinctConfigurations = seen.size();
  return out;
}

}  // namespace apf::sim
