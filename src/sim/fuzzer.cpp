#include "sim/fuzzer.h"

#include <set>
#include <sstream>

#include "config/canonical.h"
#include "obs/span.h"
#include "sim/campaign.h"

namespace apf::sim {

namespace {

fault::FaultPlan planForRun(const FuzzOptions& opts, std::size_t n,
                            std::uint64_t engineSeed) {
  fault::FaultPlan plan;
  if (!opts.faultsRequested()) return plan;
  plan.noiseSigma = opts.noiseSigma;
  plan.omitProb = opts.omitProb;
  plan.multFlipProb = opts.multFlipProb;
  plan.dropProb = opts.dropProb;
  plan.truncProb = opts.truncProb;
  plan.seed = engineSeed;
  if (opts.crashCount > 0) {
    // Re-draw victims and crash timings per run: a campaign should explore
    // many crash interleavings, not one.
    plan.crashes = fault::planWithRandomCrashes(n, opts.crashCount,
                                                engineSeed, opts.crashHorizon)
                       .crashes;
  }
  return plan;
}

/// Everything one schedule contributes to the campaign; produced on a
/// worker thread, merged on the calling thread in run-index order.
struct RunRecord {
  std::set<config::CanonicalSignature> seen;
  bool collisionOk = true;
  bool secOk = true;
  double maxGrowth = 1.0;
  bool terminated = false;
  bool success = false;
  Outcome outcome = Outcome::Stalled;
  std::string violation;  // first violation of this run (empty when clean)
  std::string violationKind;  // "collision" / "sec_growth"
  fault::FaultPlan plan;
  std::uint64_t seed = 0;
  double earlyStopProb = 0.0;
};

}  // namespace

FuzzResult fuzzSchedules(const Algorithm& algo,
                         const config::Configuration& start,
                         const config::Configuration& pattern,
                         const FuzzOptions& opts) {
  FuzzResult out;
  std::set<config::CanonicalSignature> seen;
  seen.insert(config::canonicalSignature(start));
  // Computed before the fan-out: warms `start`'s SEC cache, so worker
  // threads copying `start` into their engines read a stable cache.
  const double startSec = start.sec().radius;
  pattern.sec();  // warm for the same reason (engines copy `pattern` too)
  // Warm the pattern's Weber cache too: every snapshot's pattern copy
  // descends from this instance, so one Weiszfeld here serves the whole
  // campaign (algorithms then hit the cache; same warm-before-share rule).
  pattern.weberPoint();
  // Multiplicity in the TARGET is intended; anything else is a collision.
  const bool patternHasMultiplicity = pattern.hasMultiplicity();

  constexpr double kAggression[] = {0.1, 0.5, 0.9};
  std::vector<int> runs(static_cast<std::size_t>(std::max(0, opts.schedules)));
  for (std::size_t i = 0; i < runs.size(); ++i) runs[i] = static_cast<int>(i);

  // One schedule, fully thread-confined: its own Engine (which copies start
  // and pattern), RNG streams, fault plan, and observer state.
  auto worker = [&](int run, std::size_t) -> RunRecord {
    obs::ScopedSpan span("fuzz_run", "fuzzer", "run", run);
    RunRecord rec;
    EngineOptions eopts;
    eopts.seed = 0x5eedu + 77u * static_cast<std::uint64_t>(run);
    eopts.maxEvents = opts.maxEventsPerRun;
    eopts.multiplicityDetection = opts.multiplicityDetection;
    eopts.sched.kind = sched::SchedulerKind::Async;
    eopts.sched.delta = opts.delta;
    eopts.sched.earlyStopProb =
        opts.sweepAggression ? kAggression[run % 3] : 0.5;
    eopts.fault = planForRun(opts, start.size(), eopts.seed);
    rec.seed = eopts.seed;
    rec.earlyStopProb = eopts.sched.earlyStopProb;
    rec.plan = eopts.fault;
    Engine eng(start, pattern, algo, eopts);

    // Incremental safety-check state. The observer only fires on position
    // changes, and only the activated robot can have moved, which supports
    // two exact short-cuts (both preserve the merged FuzzResult bit for
    // bit — see docs/PERFORMANCE.md for the argument):
    //  * collision: `hasMultiplicity` holds iff SOME pair of live points is
    //    within tolerance. If the previous check found no such pair, any
    //    new pair must involve the moved robot, so an O(n) scan against it
    //    replaces the O(n^2) full scan.
    //  * SEC bound: `liveSec` always encloses every live point (crashes
    //    only shrink the live set). When the moved robot lands inside it,
    //    the new live SEC radius cannot exceed liveSec.radius, which was
    //    already folded into maxGrowth — so the recompute is skipped and
    //    neither maxGrowth nor the bound verdict can change.
    std::uint64_t lastVersion = 0;
    bool baselineChecked = false;  // full O(n^2) collision scan done once
    bool runCollided = false;
    geom::Circle liveSec;  // encloses all live robots once haveLiveSec
    bool haveLiveSec = false;
    // Reused across observer invocations (the observer is run-confined):
    // fills once per use, capacity persists, so the per-event safety check
    // allocates nothing in steady state.
    std::vector<geom::Vec2> liveBuf;
    liveBuf.reserve(start.size());

    std::string& violation = rec.violation;
    eng.setObserver([&](const Engine& e, std::size_t robot) {
      if (e.configVersion() == lastVersion) return;  // nothing moved
      lastVersion = e.configVersion();
      rec.seen.insert(config::canonicalSignature(e.positions()));
      const config::Configuration& all = e.positions();
      const std::size_t liveCount = all.size() - e.crashedCount();
      if (liveCount < 2) return;

      const geom::Tol tol{1e-9, 1e-9};
      auto livePoints = [&]() -> const std::vector<geom::Vec2>& {
        liveBuf.clear();
        for (std::size_t j = 0; j < all.size(); ++j) {
          if (!e.isCrashed(j)) liveBuf.push_back(all[j]);
        }
        return liveBuf;
      };

      if (!patternHasMultiplicity && !runCollided) {
        bool collided = false;
        if (!baselineChecked) {
          // First position change of the run: establish the no-coincident-
          // pair invariant over the whole live set once (pairwise scan ==
          // hasMultiplicity's boolean, see config::hasCoincidentPair).
          collided = config::hasCoincidentPair(livePoints(), tol);
          baselineChecked = true;
        } else {
          const geom::Vec2 p = all[robot];
          for (std::size_t j = 0; j < all.size(); ++j) {
            if (j == robot || e.isCrashed(j)) continue;
            if (geom::nearlyEqual(all[j], p, tol)) {
              collided = true;
              break;
            }
          }
        }
        if (collided) {
          runCollided = true;
          rec.collisionOk = false;
          if (violation.empty()) {
            rec.violationKind = "collision";
            std::ostringstream os;
            os << "collision: run " << run << ", event " << e.metrics().events
               << ", robot " << robot;
            if (e.crashedCount() > 0) {
              os << " (" << e.crashedCount() << " crashed)";
            }
            violation = os.str();
          }
        }
      }

      if (haveLiveSec &&
          geom::dist(all[robot], liveSec.center) <= liveSec.radius) {
        return;  // new live SEC radius <= liveSec.radius <= maxGrowth * start
      }
      liveSec = geom::smallestEnclosingCircle(livePoints());
      haveLiveSec = true;
      const double growth = liveSec.radius / startSec;
      rec.maxGrowth = std::max(rec.maxGrowth, growth);
      if (growth > FuzzResult::kSecGrowthBound) {
        rec.secOk = false;
        if (violation.empty()) {
          rec.violationKind = "sec_growth";
          std::ostringstream os;
          os << "SEC grew x" << growth << ": run " << run << ", event "
             << e.metrics().events;
          violation = os.str();
        }
      }
    });

    const RunResult res = eng.run();
    rec.terminated = res.terminated;
    rec.success = res.success;
    rec.outcome = res.outcome;
    return rec;
  };

  runCampaign(
      runs, worker,
      [&](std::size_t i, RunRecord&& rec) {
        ++out.runs;
        out.terminated += rec.terminated;
        out.successes += rec.success;
        out.outcomes[rec.outcome] += 1;
        out.collisionFree = out.collisionFree && rec.collisionOk;
        out.secBounded = out.secBounded && rec.secOk;
        out.maxSecGrowthFactor =
            std::max(out.maxSecGrowthFactor, rec.maxGrowth);
        if (!rec.violation.empty()) {
          FuzzFailure failure;
          failure.seed = rec.seed;
          failure.earlyStopProb = rec.earlyStopProb;
          failure.violation = rec.violation;
          failure.violationKind = rec.violationKind;
          failure.plan = std::move(rec.plan);
          failure.run = static_cast<int>(i);
          out.failures.push_back(std::move(failure));
          if (out.firstViolation.empty()) out.firstViolation = rec.violation;
        }
        seen.merge(rec.seen);
      },
      opts.jobs);

  out.distinctConfigurations = seen.size();
  return out;
}

}  // namespace apf::sim
