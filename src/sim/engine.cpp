#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "config/similarity.h"
#include "geom/angle.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "obs/stats.h"
#include "sim/supervisor.h"

namespace apf::sim {

using config::Configuration;
using geom::Path;
using geom::Similarity;
using geom::Vec2;

Engine::Engine(Configuration start, Configuration pattern,
               const Algorithm& algo, EngineOptions opts)
    : current_(std::move(start)),
      pattern_(std::move(pattern)),
      algo_(algo),
      opts_(opts),
      rng_(opts.seed) {
  robots_.resize(current_.size());
  auto& adv = rng_.adversaryEngine();
  std::uniform_real_distribution<double> uang(0.0, geom::kTwoPi);
  std::uniform_real_distribution<double> uscale(-0.6, 0.6);
  for (Robot& r : robots_) {
    double angle = 0.0, scale = 1.0;
    bool reflect = false;
    if (opts_.randomizeFrames) {
      angle = uang(adv);
      scale = std::exp(uscale(adv));
      if (!opts_.commonChirality) reflect = (adv() & 1u) != 0;
    }
    r.frame = Similarity(angle, scale, reflect, {});
    r.frameInv = r.frame.inverse();
  }
  if (const auto err = fault::validate(opts_.fault)) {
    throw std::invalid_argument("EngineOptions::fault: " + *err);
  }
  faultsOn_ = opts_.fault.active();
  if (faultsOn_) {
    faultRng_.seed(fault::faultStreamSeed(opts_.seed, opts_.fault.seed));
    crashFired_.assign(opts_.fault.crashes.size(), false);
    patternHasMultiplicity_ = pattern_.hasMultiplicity();
  }
  scratch_.reserveFor(current_.size());
  recorder_ = opts_.recorder;
  timed_ = opts_.collectTimings || recorder_ != nullptr;
  startNanos_ = obs::nowNanos();
  if (recorder_) {
    obs::Event ev;
    ev.kind = obs::EventKind::RunStart;
    emit(ev);
  }
}

void Engine::emit(obs::Event ev) {
  ev.index = eventIndex_++;
  ev.wallNanos = obs::nowNanos() - startNanos_;
  ev.schedEvent = metrics_.events;
  ev.configVersion = configVersion_;
  recorder_->record(ev);
}

void Engine::refreshSnapshot(std::size_t i) {
  Robot& r = robots_[i];
  const Vec2 self = current_[i];
  // Recycle the previous snapshot's own storage: release its vector, refill
  // it, hand it back. After the first Look per robot this allocates nothing.
  std::vector<Vec2> local = r.snap.robots.releasePoints();
  local.clear();
  local.reserve(current_.size());
  for (const Vec2& p : current_.points()) local.push_back(r.frame.apply(p - self));
  r.snap.robots.assign(std::move(local));
  r.snap.selfIndex = i;
  // The pattern is handed to every robot as the same raw coordinate list;
  // a robot with a reflected frame thereby "intends" the mirror image in
  // global terms, which the similarity-with-symmetry success criterion
  // absorbs. The pattern never changes mid-run, so the copy happens once
  // per robot; the copy carries pattern_'s warmed geometry caches.
  if (r.snap.pattern.empty()) r.snap.pattern = pattern_;
  r.snap.multiplicityDetection = opts_.multiplicityDetection;
}

void Engine::applyPendingCrashes() {
  const auto& crashes = opts_.fault.crashes;
  for (std::size_t k = 0; k < crashes.size(); ++k) {
    if (crashFired_[k] || metrics_.events < crashes[k].atEvent) continue;
    crashFired_[k] = true;
    if (crashes[k].robot < robots_.size()) {
      crashRobot(crashes[k].robot, obs::FaultKind::Crash);
    }
  }
}

void Engine::crashRobot(std::size_t i, obs::FaultKind kind) {
  Robot& r = robots_[i];
  if (r.crashed) return;
  // Crash-stop: the robot freezes exactly where it stands — a mid-Move
  // robot stays on its committed path and remains visible to every later
  // snapshot; it just never acts again.
  r.crashed = true;
  r.phase = Phase::Idle;
  ++crashedCount_;
  metrics_.crashed += 1;
  if (recorder_) {
    obs::Event ev;
    ev.kind = obs::EventKind::RobotCrashed;
    ev.robot = static_cast<std::int64_t>(i);
    ev.faultKind = kind;
    emit(ev);
  }
}

void Engine::recordFault(std::size_t robot, obs::FaultKind kind,
                         double magnitude) {
  metrics_.faultsInjected += 1;
  if (recorder_) {
    obs::Event ev;
    ev.kind = obs::EventKind::FaultInjected;
    ev.robot = static_cast<std::int64_t>(robot);
    ev.faultKind = kind;
    ev.distance = magnitude;
    emit(ev);
  }
}

void Engine::applyLookFaults(std::size_t i) {
  const fault::FaultPlan& fp = opts_.fault;
  if (!fp.sensorActive()) return;
  Robot& r = robots_[i];
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::normal_distribution<double> gauss(0.0, fp.noiseSigma);
  const auto& pts = r.snap.robots.points();
  // Build the filtered copy in the scratch spare, then swap it with the
  // snapshot's storage below — two buffers ping-pong forever, zero
  // steady-state allocations.
  std::vector<Vec2> kept = std::move(scratch_.points);
  kept.clear();
  // +1: an over-count multiplicity flip appends one duplicate beyond the
  // snapshot size; reserving for it keeps even flip events allocation-free.
  kept.reserve(pts.size() + 1);
  std::size_t newSelf = 0;
  std::size_t omitted = 0;
  for (std::size_t j = 0; j < pts.size(); ++j) {
    if (j == r.snap.selfIndex) {
      // A robot always perceives itself (at its local origin), exactly.
      newSelf = kept.size();
      kept.push_back(pts[j]);
      continue;
    }
    if (fp.omitProb > 0.0 && u(faultRng_) < fp.omitProb) {
      ++omitted;
      continue;
    }
    Vec2 p = pts[j];
    if (fp.noiseSigma > 0.0) {
      // Sigma is in global units; the frame is linear (zero translation),
      // so a global noise vector maps through applyLinear and composes
      // additively with the observed offset.
      p += r.frame.applyLinear(Vec2{gauss(faultRng_), gauss(faultRng_)});
    }
    kept.push_back(p);
  }
  bool flipped = false;
  if (fp.multFlipProb > 0.0 && kept.size() >= 2 &&
      u(faultRng_) < fp.multFlipProb) {
    // Under-count when a multiplicity is visible (one co-located point
    // vanishes), over-count otherwise (a random point doubles).
    std::size_t dropIdx = kept.size();
    const geom::Tol tol{1e-9, 1e-9};
    for (std::size_t a = 0; a + 1 < kept.size() && dropIdx == kept.size();
         ++a) {
      for (std::size_t b = a + 1; b < kept.size(); ++b) {
        if (geom::dist(kept[a], kept[b]) <= tol.dist) {
          dropIdx = (b == newSelf) ? a : b;
          break;
        }
      }
    }
    if (dropIdx < kept.size()) {
      kept.erase(kept.begin() + static_cast<std::ptrdiff_t>(dropIdx));
      if (dropIdx < newSelf) --newSelf;
    } else {
      kept.push_back(kept[faultRng_() % kept.size()]);
    }
    flipped = true;
  }
  const bool noisy = fp.noiseSigma > 0.0 && kept.size() > 1;
  scratch_.points = r.snap.robots.releasePoints();
  r.snap.robots.assign(std::move(kept));
  r.snap.selfIndex = newSelf;
  if (noisy) recordFault(i, obs::FaultKind::SensorNoise, fp.noiseSigma);
  if (omitted > 0) {
    recordFault(i, obs::FaultKind::SensorOmission,
                static_cast<double>(omitted));
  }
  if (flipped) recordFault(i, obs::FaultKind::MultiplicityFlip, 0.0);
}

bool Engine::applyComputeFaults(std::size_t i, Action& act) {
  const fault::FaultPlan& fp = opts_.fault;
  std::uniform_real_distribution<double> u(0.0, 1.0);
  if (fp.dropProb > 0.0 && u(faultRng_) < fp.dropProb) {
    // Motor never engages: the computed path is discarded and the robot
    // finishes its cycle where it stands (but is NOT quiescent — it
    // wanted to move).
    recordFault(i, obs::FaultKind::ComputeDrop, 0.0);
    act.path = geom::Path{};
    return false;
  }
  if (fp.truncProb > 0.0 && u(faultRng_) < fp.truncProb) {
    // Motor stall: the robot will execute only a uniform fraction of its
    // path — possibly less than delta, beyond what non-rigid movement
    // already permits.
    const double frac = u(faultRng_);
    robots_[i].pathLimit = frac * act.path.length();
    recordFault(i, obs::FaultKind::ComputeTruncate, frac);
  }
  return true;
}

void Engine::checkLiveSafety() {
  // Multiplicity in the TARGET is intended; anything else among live
  // robots is a collision the fault mix provoked.
  if (safetyViolated_ || patternHasMultiplicity_) return;
  const geom::Tol tol{1e-9, 1e-9};
  if (crashedCount_ == 0) {
    if (current_.hasMultiplicity(tol)) safetyViolated_ = true;
    return;
  }
  auto& live = scratch_.live;
  live.clear();
  for (std::size_t j = 0; j < robots_.size(); ++j) {
    if (!robots_[j].crashed) live.push_back(current_[j]);
  }
  if (config::hasCoincidentPair(live, tol)) safetyViolated_ = true;
}

Action Engine::computeFor(std::size_t i, sched::RandomSource& rng) {
  Robot& r = robots_[i];
  Action local = algo_.compute(r.snap, rng);
  if (!local.isMove()) return local;
  // Map the local-frame path back to the global frame: the local path starts
  // at the robot's position (local origin).
  Action global = local;
  Similarity toGlobal =
      Similarity::translation(current_[i]) * r.frameInv;
  global.path = local.path.transformed(toGlobal);
  return global;
}

void Engine::look(std::size_t i) {
  obs::ScopedSpan span("look", "engine", "robot",
                       static_cast<std::int64_t>(i));
  const std::uint64_t t0 = timed_ ? obs::nowNanos() : 0;
  refreshSnapshot(i);
  robots_[i].snapVersion = configVersion_;
  robots_[i].phase = Phase::Observed;
  if (timed_) metrics_.lookTime.add(obs::nowNanos() - t0);
  if (recorder_) {
    obs::Event ev;
    ev.kind = obs::EventKind::Look;
    ev.robot = static_cast<std::int64_t>(i);
    emit(ev);
  }
  if (faultsOn_) applyLookFaults(i);
}

bool Engine::compute(std::size_t i) {
  Robot& r = robots_[i];
  obs::ScopedSpan span("compute", "engine", "robot",
                       static_cast<std::int64_t>(i));
  const std::uint64_t bitsBefore = rng_.bitsConsumed();
  const std::uint64_t t0 = timed_ ? obs::nowNanos() : 0;
  Action act = computeFor(i, rng_);
  span.arg2("phase", act.phaseTag);
  const std::uint64_t durNanos = timed_ ? obs::nowNanos() - t0 : 0;
  const std::uint64_t bitsUsed = rng_.bitsConsumed() - bitsBefore;
  const std::uint64_t staleness = configVersion_ - r.snapVersion;
  metrics_.randomBits += bitsUsed;
  metrics_.phaseActivations[act.phaseTag] += 1;
  metrics_.staleness.add(staleness);
  if (act.electionRound) metrics_.electionRounds += 1;
  if (timed_) {
    metrics_.computeTime.add(durNanos);
    metrics_.phaseNanos[act.phaseTag] += durNanos;
  }
  if (recorder_) {
    obs::Event ev;
    ev.robot = static_cast<std::int64_t>(i);
    ev.phaseTag = act.phaseTag;
    ev.bitsUsed = bitsUsed;
    if (act.phaseTag != r.phaseTag) {
      ev.kind = obs::EventKind::PhaseTransition;
      ev.phaseFrom = r.phaseTag;
      emit(ev);
      ev.phaseFrom = 0;
    }
    ev.kind = obs::EventKind::Compute;
    ev.staleness = staleness;
    ev.durNanos = durNanos;
    emit(ev);
    if (act.electionRound) {
      ev.kind = obs::EventKind::ElectionRound;
      ev.staleness = 0;
      ev.durNanos = 0;
      emit(ev);
    }
  }
  r.phaseTag = act.phaseTag;
  bool dropped = false;
  if (act.isMove()) {
    r.pathLimit = act.path.length();
    if (faultsOn_ && opts_.fault.computeActive()) {
      dropped = !applyComputeFaults(i, act);
    }
  }
  if (!act.isMove()) {
    // An empty, randomness-free decision counts toward quiescence, credited
    // to the configuration version the decision was actually based on (the
    // snapshot may be stale by compute time). A dropped path never counts:
    // the robot wanted to move. Neither does any decision based on a
    // stochastically faulted snapshot (noise/omission/mult-flip): "stayed
    // once" does not imply "stays forever" when the next Look may perceive
    // a different world, so such runs end only on success or event budget.
    const bool provablyQuiet =
        bitsUsed == 0 && !dropped && !(faultsOn_ && opts_.fault.sensorActive());
    r.quietVersion = provablyQuiet ? r.snapVersion : 0;
    completeCycle(i);
    return false;
  }
  r.quietVersion = 0;
  r.path = std::move(act.path);
  r.progress = 0.0;
  r.phase = Phase::Ready;
  return true;
}

bool Engine::moveStep(std::size_t i, bool full) {
  Robot& r = robots_[i];
  obs::ScopedSpan span("move", "engine", "robot",
                       static_cast<std::int64_t>(i));
  span.arg2("phase", robots_[i].phaseTag);
  const std::uint64_t t0 = timed_ ? obs::nowNanos() : 0;
  r.phase = Phase::Moving;
  // pathLimit == path.length() unless a ComputeTruncate fault stalled the
  // motor early; progress never exceeds it.
  const double remaining = r.pathLimit - r.progress;
  double d = remaining;
  if (!full && remaining > opts_.sched.delta) {
    auto& adv = rng_.adversaryEngine();
    std::uniform_real_distribution<double> u(0.0, 1.0);
    if (u(adv) < opts_.sched.earlyStopProb) {
      d = opts_.sched.delta;
    } else {
      d = opts_.sched.delta + u(adv) * (remaining - opts_.sched.delta);
    }
  }
  r.progress += d;
  current_[i] = r.path.pointAt(r.progress);
  metrics_.distance += d;
  if (timed_) metrics_.moveTime.add(obs::nowNanos() - t0);
  if (d > 0.0) {
    ++configVersion_;
    if (faultsOn_) checkLiveSafety();
    if (observer_) observer_(*this, i);
  }
  const bool done = r.progress >= r.pathLimit - 1e-15;
  if (recorder_) {
    obs::Event ev;
    ev.kind = obs::EventKind::MoveStep;
    ev.robot = static_cast<std::int64_t>(i);
    ev.phaseTag = r.phaseTag;
    ev.distance = d;
    ev.flag = done;
    emit(ev);
  }
  if (done) completeCycle(i);
  return done;
}

void Engine::completeCycle(std::size_t i) {
  robots_[i].phase = Phase::Idle;
  metrics_.cycles += 1;
  if (recorder_) {
    obs::Event ev;
    ev.kind = obs::EventKind::CycleComplete;
    ev.robot = static_cast<std::int64_t>(i);
    ev.phaseTag = robots_[i].phaseTag;
    emit(ev);
  }
}

void Engine::fsyncRound() {
  // Lock-step: every live robot Looks at the same configuration, then
  // everyone Computes, then all moves are executed fully and
  // simultaneously. Crashed robots are inert but stay observable.
  std::size_t live = 0;
  for (std::size_t i = 0; i < robots_.size(); ++i) {
    if (robots_[i].crashed) continue;
    look(i);
    ++live;
  }
  auto& movers = scratch_.movers;
  movers.clear();
  for (std::size_t i = 0; i < robots_.size(); ++i) {
    if (robots_[i].crashed) continue;
    if (compute(i)) movers.push_back(i);
  }
  for (std::size_t i : movers) moveStep(i, /*full=*/true);
  metrics_.events += live;
}

void Engine::ssyncRound() {
  auto& adv = rng_.adversaryEngine();
  std::uniform_real_distribution<double> u(0.0, 1.0);
  auto& liveIdx = scratch_.liveIdx;
  liveIdx.clear();
  for (std::size_t i = 0; i < robots_.size(); ++i) {
    if (!robots_[i].crashed) liveIdx.push_back(i);
  }
  if (liveIdx.empty()) return;
  auto& active = scratch_.active;
  active.clear();
  for (std::size_t i : liveIdx) {
    if (u(adv) < opts_.sched.activationProb ||
        robots_[i].sinceProgress > opts_.sched.fairnessBound) {
      active.push_back(i);
    }
  }
  if (active.empty()) {
    active.push_back(liveIdx[adv() % liveIdx.size()]);
  }
  for (std::size_t i : active) look(i);
  auto& movers = scratch_.movers;
  movers.clear();
  for (std::size_t i : active) {
    if (compute(i)) movers.push_back(i);
  }
  // SSYNC cycles are atomic but movement is still non-rigid: the adversary
  // may stop each mover after delta.
  for (std::size_t i : movers) moveStep(i, /*full=*/false);
  // Any mover stopped short completes its cycle anyway: in SSYNC the cycle
  // is atomic, the robot simply did not reach its destination.
  for (std::size_t i : movers) {
    if (robots_[i].phase == Phase::Moving) completeCycle(i);
  }
  for (std::size_t i = 0; i < robots_.size(); ++i) {
    robots_[i].sinceProgress =
        std::find(active.begin(), active.end(), i) != active.end()
            ? 0
            : robots_[i].sinceProgress + 1;
  }
  metrics_.events += active.size();
}

std::size_t Engine::pickRobot(const std::vector<std::size_t>& eligible) {
  // Fairness first: any starving robot is forced.
  for (std::size_t i : eligible) {
    if (robots_[i].sinceProgress > opts_.sched.fairnessBound) return i;
  }
  auto& adv = rng_.adversaryEngine();
  return eligible[adv() % eligible.size()];
}

void Engine::asyncEvent() {
  auto& eligible = scratch_.eligible;
  eligible.clear();
  for (std::size_t i = 0; i < robots_.size(); ++i) {
    if (!robots_[i].crashed) eligible.push_back(i);
  }
  if (eligible.empty()) return;
  const std::size_t i = pickRobot(eligible);
  Robot& r = robots_[i];
  switch (r.phase) {
    case Phase::Idle:
      look(i);
      break;
    case Phase::Observed:
      compute(i);
      break;
    case Phase::Ready:
    case Phase::Moving:
      moveStep(i, /*full=*/false);
      break;
  }
  for (std::size_t j = 0; j < robots_.size(); ++j) {
    robots_[j].sinceProgress = (j == i) ? 0 : robots_[j].sinceProgress + 1;
  }
  metrics_.events += 1;
}

void Engine::scriptedEvent() {
  if (scriptPos_ >= opts_.script.size()) {
    // Script exhausted: continue under the ASYNC adversary.
    asyncEvent();
    return;
  }
  const sched::ScriptedEvent ev = opts_.script[scriptPos_++];
  metrics_.events += 1;
  if (ev.robot >= robots_.size()) return;
  Robot& r = robots_[ev.robot];
  if (r.crashed) return;  // crash-stop: every later op is a no-op
  switch (ev.op) {
    case sched::ScriptedEvent::Op::Crash:
      crashRobot(ev.robot, obs::FaultKind::Crash);
      break;
    case sched::ScriptedEvent::Op::Look:
      if (r.phase == Phase::Idle) look(ev.robot);
      break;
    case sched::ScriptedEvent::Op::Compute:
      if (r.phase == Phase::Observed) compute(ev.robot);
      break;
    case sched::ScriptedEvent::Op::Move: {
      if (r.phase != Phase::Ready && r.phase != Phase::Moving) break;
      if (ev.distance <= 0.0) {
        moveStep(ev.robot, /*full=*/true);
        break;
      }
      // Explicit distance, clamped to the model's [delta, remaining].
      r.phase = Phase::Moving;
      const double remaining = r.pathLimit - r.progress;
      const double d =
          std::min(remaining, std::max(ev.distance, opts_.sched.delta));
      r.progress += d;
      current_[ev.robot] = r.path.pointAt(r.progress);
      metrics_.distance += d;
      if (d > 0.0) {
        ++configVersion_;
        if (faultsOn_) checkLiveSafety();
        if (observer_) observer_(*this, ev.robot);
      }
      const bool done = r.progress >= r.pathLimit - 1e-15;
      if (recorder_) {
        obs::Event step;
        step.kind = obs::EventKind::MoveStep;
        step.robot = static_cast<std::int64_t>(ev.robot);
        step.phaseTag = r.phaseTag;
        step.distance = d;
        step.flag = done;
        emit(step);
      }
      if (done) completeCycle(ev.robot);
      break;
    }
  }
}

bool Engine::isTerminal() const {
  for (const Robot& r : robots_) {
    if (r.crashed) continue;  // a crashed robot is quiescent by force
    if (r.phase == Phase::Ready || r.phase == Phase::Moving) return false;
    if (r.quietVersion != configVersion_) return false;
  }
  return true;
}

bool Engine::success() const {
  // Matching tolerance mirrors the algorithms' own stopping thresholds
  // (robots stop within 1e-7 of their targets); matching is performed on
  // SEC-normalized coordinates, so this is scale-free.
  return config::similar(current_, pattern_, geom::Tol{1e-6, 1e-6});
}

bool Engine::liveSuccess() const {
  if (crashedCount_ == 0) return success();
  const std::size_t n = pattern_.size();
  const std::size_t f = crashedCount_;
  if (f >= n) return false;
  // Borrow scratch buffers; Configuration::assign/releasePoints shuttle
  // their storage through the similarity checks without reallocating.
  std::vector<Vec2> livePts = std::move(scratch_.live);
  livePts.clear();
  livePts.reserve(n - f);
  for (std::size_t i = 0; i < robots_.size(); ++i) {
    if (!robots_[i].crashed) livePts.push_back(current_[i]);
  }
  Configuration live;
  live.assign(std::move(livePts));
  // The f crashed robots forfeit f pattern points, but which ones is the
  // adversary's secret: accept the live robots forming the pattern minus
  // ANY f-point subset. C(n, f) is tiny for the f <= 2 regime the
  // benchmarks sweep; guard exotic callers anyway.
  double combos = 1.0;
  for (std::size_t k = 0; k < f; ++k) {
    combos *= static_cast<double>(n - k) / static_cast<double>(k + 1);
  }
  if (combos > 50000.0) {
    scratch_.live = live.releasePoints();
    return false;
  }
  const geom::Tol tol{1e-6, 1e-6};
  auto& drop = scratch_.drop;
  drop.clear();
  for (std::size_t k = 0; k < f; ++k) drop.push_back(k);
  std::vector<Vec2> reduced = std::move(scratch_.reduced);
  Configuration reducedCfg;
  bool matched = false;
  bool advanced = true;
  while (advanced) {
    reduced.clear();
    reduced.reserve(n - f);
    std::size_t di = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (di < f && drop[di] == j) {
        ++di;
        continue;
      }
      reduced.push_back(pattern_[j]);
    }
    reducedCfg.assign(std::move(reduced));
    matched = config::similar(live, reducedCfg, tol);
    reduced = reducedCfg.releasePoints();
    if (matched) break;
    // Advance to the lexicographically next f-combination of [0, n).
    std::size_t k = f;
    advanced = false;
    while (k-- > 0) {
      if (drop[k] + (f - k) < n) {
        ++drop[k];
        for (std::size_t l = k + 1; l < f; ++l) drop[l] = drop[l - 1] + 1;
        advanced = true;
        break;
      }
    }
  }
  scratch_.live = live.releasePoints();
  scratch_.reduced = std::move(reduced);
  return matched;
}

bool Engine::step() {
  if (faultsOn_ && !opts_.fault.crashes.empty()) applyPendingCrashes();
  if (isTerminal()) return false;
  switch (opts_.sched.kind) {
    case sched::SchedulerKind::FSync:
      fsyncRound();
      break;
    case sched::SchedulerKind::SSync:
      ssyncRound();
      break;
    case sched::SchedulerKind::Async:
      asyncEvent();
      break;
    case sched::SchedulerKind::Scripted:
      scriptedEvent();
      break;
  }
  return true;
}

RunResult Engine::run() {
  obs::ScopedSpan span("engine_run", "engine", "n",
                       static_cast<std::int64_t>(current_.size()));
  RunResult res;
  // Per-run delta of the thread-local geometry-cache counters: the run is
  // confined to this thread, so the delta is deterministic for any APF_JOBS.
  const config::GeomCacheCounters countersBefore = config::geomCacheCounters();
  // With stochastic sensor faults quiescence is never inferred (see
  // compute()), so poll for pattern formation instead — throttled, since
  // similarity matching is much dearer than a scheduler event.
  const bool pollSuccess = faultsOn_ && opts_.fault.sensorActive();
  std::uint64_t lastPoll = 0;
  while (metrics_.events < opts_.maxEvents) {
    if (opts_.watchdog != nullptr) opts_.watchdog->poll(metrics_.events);
    if (!step()) {
      res.terminated = true;
      break;
    }
    if (pollSuccess && metrics_.events - lastPoll >= 512) {
      lastPoll = metrics_.events;
      if (success()) {
        res.terminated = true;
        break;
      }
    }
  }
  res.success = success();
  if (safetyViolated_) {
    res.outcome = Outcome::SafetyViolation;
  } else if (crashedCount_ == 0 ? res.success : liveSuccess()) {
    res.outcome = Outcome::Success;
  } else if (crashedCount_ > 0) {
    res.outcome = Outcome::CrashedShort;
  } else {
    res.outcome = Outcome::Stalled;
  }
  res.finalPositions = current_;
  const config::GeomCacheCounters& countersNow = config::geomCacheCounters();
  metrics_.secCacheHits = countersNow.secHits - countersBefore.secHits;
  metrics_.secCacheMisses = countersNow.secMisses - countersBefore.secMisses;
  metrics_.weberCacheHits = countersNow.weberHits - countersBefore.weberHits;
  metrics_.weberCacheMisses =
      countersNow.weberMisses - countersBefore.weberMisses;
  res.metrics = metrics_;
  if (recorder_) {
    obs::Event ev;
    ev.kind = obs::EventKind::RunEnd;
    ev.distance = metrics_.distance;
    ev.flag = res.success;
    emit(ev);
    recorder_->flush();
  }
  return res;
}

obs::Manifest describeRun(const EngineOptions& opts,
                          const std::string& algoName,
                          const std::string& patternLabel, std::size_t n) {
  obs::Manifest m;
  obs::addBuildInfo(m);
  m.set("algo", algoName);
  m.set("pattern", patternLabel);
  m.set("n", static_cast<std::uint64_t>(n));
  m.set("seed", opts.seed);
  m.set("engine.max_events", opts.maxEvents);
  m.set("engine.multiplicity_detection", opts.multiplicityDetection);
  m.set("engine.common_chirality", opts.commonChirality);
  m.set("engine.randomize_frames", opts.randomizeFrames);
  m.set("engine.collect_timings", opts.collectTimings);
  m.set("engine.script_events",
        static_cast<std::uint64_t>(opts.script.size()));
  sched::appendManifest(opts.sched, m);
  fault::appendManifest(opts.fault, m);
  return m;
}

void appendResult(obs::Manifest& m, const RunResult& res) {
  const Metrics& mx = res.metrics;
  m.set("result.terminated", res.terminated);
  m.set("result.success", res.success);
  m.set("result.outcome", outcomeName(res.outcome));
  m.set("result.crashed", mx.crashed);
  m.set("result.faults_injected", mx.faultsInjected);
  m.set("result.cycles", mx.cycles);
  m.set("result.events", mx.events);
  m.set("result.random_bits", mx.randomBits);
  m.set("result.distance", mx.distance);
  m.set("result.election_rounds", mx.electionRounds);
  m.set("result.stale.mean", mx.staleness.mean());
  m.set("result.stale.p95", mx.staleness.quantileUpperBound(0.95));
  m.set("result.stale.max", mx.staleness.max());
  m.set("result.geom.sec_cache_hits", mx.secCacheHits);
  m.set("result.geom.sec_cache_misses", mx.secCacheMisses);
  m.set("result.geom.weber_cache_hits", mx.weberCacheHits);
  m.set("result.geom.weber_cache_misses", mx.weberCacheMisses);
  for (const auto& [tag, count] : mx.phaseActivations) {
    m.set("result.phase." + std::to_string(tag) + ".activations", count);
  }
  for (const auto& [tag, nanos] : mx.phaseNanos) {
    m.set("result.phase." + std::to_string(tag) + ".ns", nanos);
  }
  if (mx.lookTime.count() != 0 || mx.computeTime.count() != 0 ||
      mx.moveTime.count() != 0) {
    m.set("result.time.look_ns", mx.lookTime.nanos());
    m.set("result.time.compute_ns", mx.computeTime.nanos());
    m.set("result.time.move_ns", mx.moveTime.nanos());
  }
}

}  // namespace apf::sim
