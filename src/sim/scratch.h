#pragma once

/// \file scratch.h
/// Reusable per-Engine scratch buffers for the look/compute/move hot path.
///
/// The engine's scheduler loop used to heap-allocate a dozen-plus transient
/// vectors per event (snapshot point lists, fault-filtered copies, live-robot
/// scans, eligible/mover index sets). Every one of those allocations is
/// replaced by a buffer here with clear-and-reuse semantics: the buffer is
/// cleared (capacity retained) at the top of each use, so after the first few
/// events the hot path performs zero allocations — the property bench_perf's
/// `allocs_per_event` row measures and tools/apf_bench_diff gates.
///
/// Thread confinement: a Scratch belongs to exactly one Engine, and an
/// Engine runs on exactly one campaign worker (docs/PERFORMANCE.md). Reuse
/// therefore never races, and because clearing a vector and refilling it
/// with the same values is observationally identical to constructing a fresh
/// one, runs are bit-identical to the fresh-allocation engine by
/// construction (proven against golden traces in tests/scratch_test.cpp).

#include <cstddef>
#include <vector>

#include "geom/vec2.h"

namespace apf::sim {

struct Scratch {
  /// Spare point storage ping-ponged with a Snapshot's Configuration by the
  /// fault-injection look path (applyLookFaults): the filtered copy is built
  /// here, swapped in via Configuration::assign, and the displaced storage
  /// lands back here for the next call.
  std::vector<geom::Vec2> points;
  /// Live (non-crashed) robot positions for the per-event safety check and
  /// for n-f success matching.
  std::vector<geom::Vec2> live;
  /// Pattern-minus-f-subset buffer used by Engine::liveSuccess.
  std::vector<geom::Vec2> reduced;
  /// Robots whose Compute produced a movement (FSYNC/SSYNC rounds).
  std::vector<std::size_t> movers;
  /// Robots activated this SSYNC round.
  std::vector<std::size_t> active;
  /// Live robot indices (SSYNC activation draw).
  std::vector<std::size_t> liveIdx;
  /// Live robot indices eligible for the next ASYNC event.
  std::vector<std::size_t> eligible;
  /// Current f-combination of pattern indices dropped by liveSuccess.
  std::vector<std::size_t> drop;

  /// Pre-sizes every buffer for an n-robot run so even the first events
  /// allocate nothing (liveSuccess buffers included).
  void reserveFor(std::size_t n);
};

}  // namespace apf::sim
