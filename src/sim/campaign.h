#pragma once

/// \file campaign.h
/// Parallel campaign executor: fans independent seeded runs out across a
/// fixed-size thread pool and merges their results IN RUN-INDEX ORDER, so
/// every CSV row, FuzzResult, and aggregate statistic is bit-identical to
/// the serial output regardless of thread count.
///
/// Determinism contract:
///  * `worker(item, index)` must be a pure function of its arguments plus
///    thread-confined state it creates itself (its own Engine, RNG streams,
///    config::Rng, obs sink). It must not touch shared mutable state; in
///    particular it must not call `sec()` on a Configuration instance shared
///    with other threads unless the cache was warmed before the fan-out
///    (see config/configuration.h and docs/PERFORMANCE.md).
///  * `merge(index, result)` runs on the calling thread only, in strict
///    index order 0, 1, 2, ... — never concurrently with itself.
///  * With jobs == 1 no threads are spawned at all: the campaign is a plain
///    serial loop, byte-identical to the historical single-threaded code.
///
/// Mechanics: workers claim run indices from an atomic counter, post
/// finished results into a mutex-protected mailbox, and the caller drains
/// the mailbox in batches, buffering out-of-order arrivals until the next
/// index in sequence is available. A worker exception cancels the campaign
/// (remaining items are abandoned) and is rethrown on the calling thread
/// after all workers have drained.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace apf::sim {

/// Resolves the worker-thread count for a campaign. `requested` > 0 wins;
/// otherwise the APF_JOBS environment variable (clamped to [1, 512]);
/// otherwise std::thread::hardware_concurrency() (at least 1). Not cached,
/// so tests may vary APF_JOBS between calls.
int campaignJobs(int requested = 0);

template <typename Item, typename Worker, typename Merge>
void runCampaign(const std::vector<Item>& items, Worker&& worker,
                 Merge&& merge, int jobs = 0) {
  using Result = std::invoke_result_t<Worker&, const Item&, std::size_t>;
  const std::size_t n = items.size();
  const int resolved = campaignJobs(jobs);
  if (resolved <= 1 || n <= 1) {
    // Serial path: exactly the historical loop, no threads, no mailbox.
    for (std::size_t i = 0; i < n; ++i) {
      merge(i, worker(items[i], i));
    }
    return;
  }

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::pair<std::size_t, Result>> ready;
    std::exception_ptr error;
  } box;
  std::atomic<std::size_t> next{0};

  auto body = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        Result r = worker(items[i], i);
        {
          std::lock_guard<std::mutex> lock(box.mu);
          box.ready.emplace_back(i, std::move(r));
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(box.mu);
          if (!box.error) box.error = std::current_exception();
        }
        next.store(n, std::memory_order_relaxed);  // cancel remaining items
      }
      box.cv.notify_one();
    }
  };

  const std::size_t threadCount =
      std::min<std::size_t>(static_cast<std::size_t>(resolved), n);
  std::vector<std::thread> pool;
  pool.reserve(threadCount);
  for (std::size_t t = 0; t < threadCount; ++t) pool.emplace_back(body);

  // Drain the mailbox in batches; apply merge in strict index order.
  std::map<std::size_t, Result> pending;
  std::size_t merged = 0;
  {
    std::unique_lock<std::mutex> lock(box.mu);
    while (merged < n) {
      box.cv.wait(lock, [&] { return !box.ready.empty() || box.error; });
      if (box.error) break;
      std::vector<std::pair<std::size_t, Result>> batch;
      batch.swap(box.ready);
      lock.unlock();
      for (auto& [i, r] : batch) pending.emplace(i, std::move(r));
      for (auto it = pending.find(merged); it != pending.end();
           it = pending.find(merged)) {
        merge(merged, std::move(it->second));
        pending.erase(it);
        ++merged;
      }
      lock.lock();
    }
  }
  for (std::thread& th : pool) th.join();
  if (box.error) std::rethrow_exception(box.error);
}

/// Convenience wrapper: runs the campaign and returns the results as a
/// vector in item order. Result must be default-constructible.
template <typename Item, typename Worker>
auto campaignMap(const std::vector<Item>& items, Worker&& worker,
                 int jobs = 0) {
  using Result = std::invoke_result_t<Worker&, const Item&, std::size_t>;
  std::vector<Result> out(items.size());
  runCampaign(
      items, std::forward<Worker>(worker),
      [&](std::size_t i, Result&& r) { out[i] = std::move(r); }, jobs);
  return out;
}

}  // namespace apf::sim
