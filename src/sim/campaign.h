#pragma once

/// \file campaign.h
/// Parallel campaign executor: fans independent seeded runs out across a
/// fixed-size thread pool and merges their results IN RUN-INDEX ORDER, so
/// every CSV row, FuzzResult, and aggregate statistic is bit-identical to
/// the serial output regardless of thread count.
///
/// Determinism contract:
///  * `worker(item, index)` must be a pure function of its arguments plus
///    thread-confined state it creates itself (its own Engine, RNG streams,
///    config::Rng, obs sink). It must not touch shared mutable state; in
///    particular it must not call `sec()` on a Configuration instance shared
///    with other threads unless the cache was warmed before the fan-out
///    (see config/configuration.h and docs/PERFORMANCE.md).
///  * `merge(index, result)` runs on the calling thread only, in strict
///    index order 0, 1, 2, ... — never concurrently with itself.
///  * With jobs == 1 no threads are spawned at all: the campaign is a plain
///    serial loop, byte-identical to the historical single-threaded code.
///  * Telemetry is passive: requesting CampaignStats and/or recording
///    trace spans (obs/span.h) reads clocks but never feeds anything back
///    into workers or merge order, so instrumented campaigns produce
///    bit-identical merged results (tests/campaign_test.cpp).
///
/// Mechanics: workers claim run indices from an atomic counter, post
/// finished results into a mutex-protected mailbox, and the caller drains
/// the mailbox in batches, buffering out-of-order arrivals until the next
/// index in sequence is available. A worker exception cancels the campaign
/// (remaining items are abandoned) and is rethrown on the calling thread
/// after all workers have drained.
///
/// Observability (docs/OBSERVABILITY.md):
///  * With an obs::SpanCollector installed, each worker emits
///    claim/run/post spans (category "campaign") and the calling thread
///    emits merge_stall/merge spans, so a Chrome trace shows exactly where
///    pool wall-clock goes.
///  * Passing a CampaignStats* fills a summary of the pool's behavior:
///    busy vs idle worker time, mailbox and out-of-order buffer high-water
///    marks, merge-stall time. `appendManifest` serializes it under
///    `campaign.*` keys for bench manifests and `apf_report`.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/manifest.h"
#include "obs/span.h"
#include "obs/stats.h"

namespace apf::sim {

/// Resolves the worker-thread count for a campaign. `requested` > 0 wins;
/// otherwise the APF_JOBS environment variable (clamped to [1, 512]);
/// otherwise std::thread::hardware_concurrency() (at least 1). Not cached,
/// so tests may vary APF_JOBS between calls.
int campaignJobs(int requested = 0);

/// Pool telemetry for one campaign. All durations are steady-clock
/// nanoseconds. Collection is opt-in (pass a CampaignStats* to
/// runCampaign); without it the executor reads no clocks beyond what span
/// recording itself requires.
struct CampaignStats {
  /// Worker threads actually used (1 = serial path, no threads spawned).
  int jobs = 0;
  /// Items executed (== items.size() unless a worker threw).
  std::uint64_t items = 0;
  /// Wall time of the whole runCampaign call.
  std::uint64_t wallNanos = 0;
  /// Sum over workers of time spent inside `worker(item, index)`.
  std::uint64_t workerBusyNanos = 0;
  /// Sum over workers of thread lifetime not spent in `worker` — claim,
  /// post, mailbox-lock waits, scheduling gaps. 0 on the serial path.
  std::uint64_t workerIdleNanos = 0;
  /// Max results sitting in the mailbox at once (post-side high water).
  std::uint64_t mailboxHighWater = 0;
  /// Max out-of-order results buffered while waiting for the next index
  /// in sequence (merge-side high water).
  std::uint64_t pendingHighWater = 0;
  /// Calling-thread time blocked waiting for results to arrive.
  std::uint64_t mergeStallNanos = 0;
  /// Calling-thread time inside `merge(index, result)` callbacks.
  std::uint64_t mergeNanos = 0;

  /// Busy share of total worker time, in [0, 1] (0 when untimed).
  double utilization() const {
    const double total =
        static_cast<double>(workerBusyNanos + workerIdleNanos);
    return total <= 0.0 ? 0.0
                        : static_cast<double>(workerBusyNanos) / total;
  }
};

/// Serializes pool telemetry under `campaign.*` keys (consumed by
/// apf_report's campaign-pool section).
void appendManifest(const CampaignStats& stats, obs::Manifest& manifest);

template <typename Item, typename Worker, typename Merge>
void runCampaign(const std::vector<Item>& items, Worker&& worker,
                 Merge&& merge, int jobs = 0,
                 CampaignStats* stats = nullptr) {
  using Result = std::invoke_result_t<Worker&, const Item&, std::size_t>;
  const std::size_t n = items.size();
  const int resolved = campaignJobs(jobs);
  const bool timed = stats != nullptr;
  const std::uint64_t wall0 = timed ? obs::nowNanos() : 0;
  if (stats) *stats = CampaignStats{};
  if (resolved <= 1 || n <= 1) {
    // Serial path: exactly the historical loop, no threads, no mailbox.
    // Stats reduce to busy (worker) + merge time on the calling thread.
    // A worker throw still finalizes jobs/wall before propagating — same
    // stats-before-rethrow contract as the pool path, so a crashed
    // campaign's telemetry survives into the error report.
    try {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t t0 = timed ? obs::nowNanos() : 0;
      Result r = [&] {
        obs::ScopedSpan run("run", "campaign", "item",
                            static_cast<std::int64_t>(i));
        return worker(items[i], i);
      }();
      if (timed) {
        const std::uint64_t t1 = obs::nowNanos();
        stats->workerBusyNanos += t1 - t0;
        t0 = t1;
      }
      {
        obs::ScopedSpan m("merge", "campaign", "item",
                          static_cast<std::int64_t>(i));
        merge(i, std::move(r));
      }
      if (timed) stats->mergeNanos += obs::nowNanos() - t0;
      if (stats) stats->items += 1;
    }
    } catch (...) {
      if (stats) {
        stats->jobs = 1;
        stats->wallNanos = obs::nowNanos() - wall0;
      }
      throw;
    }
    if (stats) {
      stats->jobs = 1;
      stats->wallNanos = obs::nowNanos() - wall0;
    }
    return;
  }

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::pair<std::size_t, Result>> ready;
    std::exception_ptr error;
    // Telemetry accumulators (hwm under mu; worker sums are atomic so a
    // finishing worker never takes the mailbox lock just to report time).
    std::size_t readyHighWater = 0;
    std::atomic<std::uint64_t> busyNanos{0};
    std::atomic<std::uint64_t> lifeNanos{0};
  } box;
  std::atomic<std::size_t> next{0};

  auto body = [&]() {
    const std::uint64_t life0 = timed ? obs::nowNanos() : 0;
    std::uint64_t busy = 0;
    for (;;) {
      std::size_t i;
      {
        obs::ScopedSpan claim("claim", "campaign");
        i = next.fetch_add(1, std::memory_order_relaxed);
      }
      if (i >= n) break;
      try {
        const std::uint64_t t0 = timed ? obs::nowNanos() : 0;
        Result r = [&] {
          obs::ScopedSpan run("run", "campaign", "item",
                              static_cast<std::int64_t>(i));
          return worker(items[i], i);
        }();
        if (timed) busy += obs::nowNanos() - t0;
        {
          obs::ScopedSpan post("post", "campaign", "item",
                               static_cast<std::int64_t>(i));
          std::lock_guard<std::mutex> lock(box.mu);
          box.ready.emplace_back(i, std::move(r));
          box.readyHighWater = std::max(box.readyHighWater,
                                        box.ready.size());
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(box.mu);
          if (!box.error) box.error = std::current_exception();
        }
        next.store(n, std::memory_order_relaxed);  // cancel remaining items
      }
      box.cv.notify_one();
    }
    if (timed) {
      box.busyNanos.fetch_add(busy, std::memory_order_relaxed);
      box.lifeNanos.fetch_add(obs::nowNanos() - life0,
                              std::memory_order_relaxed);
    }
  };

  const std::size_t threadCount =
      std::min<std::size_t>(static_cast<std::size_t>(resolved), n);
  std::vector<std::thread> pool;
  pool.reserve(threadCount);
  for (std::size_t t = 0; t < threadCount; ++t) pool.emplace_back(body);

  // Drain the mailbox in batches; apply merge in strict index order.
  std::map<std::size_t, Result> pending;
  std::size_t merged = 0;
  std::size_t pendingHighWater = 0;
  std::uint64_t stallNanos = 0;
  std::uint64_t mergeNanos = 0;
  {
    std::unique_lock<std::mutex> lock(box.mu);
    while (merged < n) {
      {
        obs::ScopedSpan stall("merge_stall", "campaign");
        const std::uint64_t t0 = timed ? obs::nowNanos() : 0;
        box.cv.wait(lock, [&] { return !box.ready.empty() || box.error; });
        if (timed) stallNanos += obs::nowNanos() - t0;
      }
      if (box.error) break;
      std::vector<std::pair<std::size_t, Result>> batch;
      batch.swap(box.ready);
      lock.unlock();
      const std::uint64_t m0 = timed ? obs::nowNanos() : 0;
      obs::ScopedSpan mergeSpan("merge", "campaign", "batch",
                                static_cast<std::int64_t>(batch.size()));
      for (auto& [i, r] : batch) pending.emplace(i, std::move(r));
      pendingHighWater = std::max(pendingHighWater, pending.size());
      for (auto it = pending.find(merged); it != pending.end();
           it = pending.find(merged)) {
        merge(merged, std::move(it->second));
        pending.erase(it);
        ++merged;
      }
      if (timed) mergeNanos += obs::nowNanos() - m0;
      lock.lock();
    }
  }
  for (std::thread& th : pool) th.join();
  if (stats) {
    stats->jobs = static_cast<int>(threadCount);
    stats->items = merged;
    stats->workerBusyNanos = box.busyNanos.load(std::memory_order_relaxed);
    const std::uint64_t life = box.lifeNanos.load(std::memory_order_relaxed);
    stats->workerIdleNanos =
        life > stats->workerBusyNanos ? life - stats->workerBusyNanos : 0;
    stats->mailboxHighWater = box.readyHighWater;
    stats->pendingHighWater = pendingHighWater;
    stats->mergeStallNanos = stallNanos;
    stats->mergeNanos = mergeNanos;
    stats->wallNanos = obs::nowNanos() - wall0;
  }
  if (box.error) std::rethrow_exception(box.error);
}

/// Convenience wrapper: runs the campaign and returns the results as a
/// vector in item order. Result must be default-constructible.
template <typename Item, typename Worker>
auto campaignMap(const std::vector<Item>& items, Worker&& worker,
                 int jobs = 0, CampaignStats* stats = nullptr) {
  using Result = std::invoke_result_t<Worker&, const Item&, std::size_t>;
  std::vector<Result> out(items.size());
  runCampaign(
      items, std::forward<Worker>(worker),
      [&](std::size_t i, Result&& r) { out[i] = std::move(r); }, jobs,
      stats);
  return out;
}

}  // namespace apf::sim
