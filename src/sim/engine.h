#pragma once

/// \file engine.h
/// The Look-Compute-Move execution engine with adversarial scheduling.
///
/// Model fidelity notes (paper §2):
///  * Each robot has a private coordinate frame: an unknown rotation, an
///    unknown unit of length, and — unless the run opts into common
///    chirality — possibly a reflection. Robots receive the pattern as raw
///    coordinates, so two robots with opposite handedness "imagine" mirror
///    images of it; the success criterion (similarity with symmetry) makes
///    that immaterial, which is exactly the paper's point.
///  * ASYNC: Look, Compute, and partial Move steps of different robots
///    interleave arbitrarily. A robot Computes on the snapshot captured at
///    its earlier Look (stale by then), and moving robots appear in other
///    robots' snapshots exactly like static ones.
///  * Non-rigid movement: the adversary may stop a moving robot anywhere
///    after it has traveled delta along its computed path. Paths are stored
///    as exact segment/arc geometry, so a robot stopped mid-arc is still
///    exactly on its circle.
///  * Fairness: every robot is activated within any window of
///    `fairnessBound` scheduler events.
///  * Fault injection (beyond the paper's model; see docs/FAULTS.md): an
///    optional FaultPlan adds crash-stop robots, noisy/omitted snapshots,
///    and dropped/truncated paths. Fault draws use a dedicated RNG stream,
///    so an empty plan leaves runs bit-identical to a fault-free build
///    (tests/fault_test.cpp).

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "config/configuration.h"
#include "fault/fault.h"
#include "obs/event.h"
#include "obs/manifest.h"
#include "sched/rng.h"
#include "sched/scheduler.h"
#include "sim/algorithm.h"
#include "sim/metrics.h"
#include "sim/scratch.h"

namespace apf::obs {
class Recorder;
}

namespace apf::sim {

class Watchdog;  // sim/supervisor.h

struct EngineOptions {
  sched::SchedulerOptions sched;
  std::uint64_t seed = 1;
  bool multiplicityDetection = false;
  /// When true all robot frames share a handedness (used by baselines that
  /// assume chirality); when false each frame is reflected with prob. 1/2.
  bool commonChirality = false;
  /// Randomize per-robot rotation and scale (always on for honest runs;
  /// can be disabled in unit tests to make local == global).
  bool randomizeFrames = true;
  /// Hard cap on scheduler events before giving up.
  std::uint64_t maxEvents = 2'000'000;
  /// For SchedulerKind::Scripted: the exact event sequence to execute.
  /// Invalid events (e.g. Move for a robot with no path) are skipped; when
  /// the script is exhausted the run continues under the ASYNC adversary.
  std::vector<sched::ScriptedEvent> script;
  /// Telemetry sink (not owned; must outlive the engine). When nullptr the
  /// hot path pays exactly one branch per would-be event and the run is
  /// bit-identical to an uninstrumented one.
  obs::Recorder* recorder = nullptr;
  /// Collect wall-time metrics (Metrics::lookTime/computeTime/moveTime and
  /// phaseNanos). Implied by a non-null recorder; off by default because
  /// clock reads are not free on the hot path.
  bool collectTimings = false;
  /// Fault injectors applied to this run. The default (empty) plan pays
  /// one branch per event and keeps the run bit-identical to a fault-free
  /// build; the engine constructor throws std::invalid_argument on an
  /// invalid plan (fault::validate).
  fault::FaultPlan fault;
  /// Supervisor deadline (not owned; sim/supervisor.h). Polled once per
  /// scheduler event with Metrics::events, so cycle budgets trip
  /// deterministically at LCM-step granularity; WatchdogExpired propagates
  /// out of run(). nullptr (default) costs one branch per event and leaves
  /// the run bit-identical to an unsupervised one.
  Watchdog* watchdog = nullptr;
};

/// Drives one execution of an algorithm from a start configuration toward a
/// pattern. Deterministic given (inputs, seed).
class Engine {
 public:
  Engine(config::Configuration start, config::Configuration pattern,
         const Algorithm& algo, EngineOptions opts);

  /// Runs to termination or the event cap; returns the outcome.
  RunResult run();

  /// Advances one scheduler round/event. Returns false when terminal.
  bool step();

  /// Current global positions.
  const config::Configuration& positions() const { return current_; }
  /// Phase tag of robot i's most recent Compute (0 before the first).
  int lastPhaseTag(std::size_t i) const { return robots_[i].phaseTag; }
  const config::Configuration& pattern() const { return pattern_; }
  const Metrics& metrics() const { return metrics_; }

  /// Monotone counter bumped on every actual position change. Observers can
  /// compare it across invocations to skip recomputation when the
  /// configuration is unchanged (see sim/fuzzer.cpp).
  std::uint64_t configVersion() const { return configVersion_; }

  /// True when no robot is moving (or committed to move) and every robot's
  /// most recent completed Compute — on the current configuration — chose
  /// to stay without consuming randomness. Tracked organically: the engine
  /// never probes the algorithm out-of-band.
  bool isTerminal() const;

  /// True when the current configuration is similar to the pattern.
  bool success() const;

  /// n-f success: with f crashed robots, true when the live robots form
  /// the pattern minus some f-point subset (equals success() when f = 0).
  bool liveSuccess() const;

  /// True when robot i was halted by a crash-stop fault.
  bool isCrashed(std::size_t i) const { return robots_[i].crashed; }
  /// Robots halted by crash-stop faults so far.
  std::size_t crashedCount() const { return crashedCount_; }
  /// True when fault injection detected an unintended multiplicity point
  /// among live robots (only checked while a FaultPlan is active).
  bool safetyViolated() const { return safetyViolated_; }

  /// Called after every event that changes positions (for traces/SVG).
  using Observer = std::function<void(const Engine&, std::size_t robot)>;
  void setObserver(Observer obs) { observer_ = std::move(obs); }

 private:
  enum class Phase { Idle, Observed, Ready, Moving };

  struct Robot {
    geom::Similarity frame;  ///< linear part of local frame (global -> local)
    geom::Similarity frameInv;
    Phase phase = Phase::Idle;
    Snapshot snap;        ///< captured at Look
    geom::Path path;      ///< global-frame path being executed
    /// Arclength the robot will actually execute: path.length() normally,
    /// less when a ComputeTruncate fault stalled the motor early.
    double pathLimit = 0;
    bool crashed = false;  ///< crash-stop fault fired; never acts again
    double progress = 0;   ///< arclength already traveled
    int sinceProgress = 0;
    int phaseTag = 0;
    /// Configuration version on which this robot last completed an empty,
    /// randomness-free cycle (0 = none yet).
    std::uint64_t quietVersion = 0;
    /// Configuration version captured by this robot's last Look.
    std::uint64_t snapVersion = 0;
  };

  /// Stamps index/time/context fields and hands `ev` to the recorder.
  /// Callers must already have checked `recorder_ != nullptr`.
  void emit(obs::Event ev);

  /// Rebuilds robot i's snapshot in place, recycling the previous
  /// snapshot's storage (allocation-free in steady state).
  void refreshSnapshot(std::size_t i);
  /// Fires every planned crash whose event threshold has been reached.
  void applyPendingCrashes();
  /// Halts robot i forever, exactly where it stands (mid-path included).
  void crashRobot(std::size_t i, obs::FaultKind kind);
  /// Applies sensor faults (noise/omission/multiplicity flips) to robot
  /// i's freshly captured snapshot.
  void applyLookFaults(std::size_t i);
  /// Applies compute faults (drop/truncate) to a move-producing action;
  /// returns false when the action was dropped entirely.
  bool applyComputeFaults(std::size_t i, Action& act);
  /// Flags `safetyViolated_` when live robots form an unintended
  /// multiplicity point (fault runs only).
  void checkLiveSafety();
  /// Emits a FaultInjected event and counts it in the metrics.
  void recordFault(std::size_t robot, obs::FaultKind kind, double magnitude);
  /// Runs the algorithm for robot i on its stored snapshot; returns the
  /// global-frame action.
  Action computeFor(std::size_t i, sched::RandomSource& rng);
  void look(std::size_t i);
  /// Returns true when the compute produced a movement.
  bool compute(std::size_t i);
  /// Advances robot i along its path; returns true when the path completed.
  bool moveStep(std::size_t i, bool full);
  void completeCycle(std::size_t i);

  void fsyncRound();
  void ssyncRound();
  void asyncEvent();
  void scriptedEvent();
  std::size_t pickRobot(const std::vector<std::size_t>& eligible);

  config::Configuration current_;
  config::Configuration pattern_;
  const Algorithm& algo_;
  EngineOptions opts_;
  std::vector<Robot> robots_;
  sched::RandomSource rng_;
  Metrics metrics_;
  Observer observer_;
  /// Reusable hot-path buffers (sim/scratch.h). Mutable: const queries
  /// (liveSuccess) borrow buffers too; the engine is single-threaded, so
  /// the reuse never races.
  mutable Scratch scratch_;

  obs::Recorder* recorder_ = nullptr;
  bool timed_ = false;
  std::uint64_t eventIndex_ = 0;
  std::uint64_t startNanos_ = 0;

  std::uint64_t configVersion_ = 1;
  std::size_t scriptPos_ = 0;

  /// Fault-injection state. `faultsOn_` caches plan.active() so the
  /// fault-free hot path pays exactly one branch per event.
  bool faultsOn_ = false;
  std::mt19937_64 faultRng_;
  std::vector<bool> crashFired_;
  std::size_t crashedCount_ = 0;
  bool safetyViolated_ = false;
  bool patternHasMultiplicity_ = false;
};

/// Builds the reproducibility manifest for a run: seed, every
/// EngineOptions / SchedulerOptions field, algorithm and pattern labels,
/// n, and build info. Any CSV row or event log accompanied by this
/// manifest can be re-run exactly.
obs::Manifest describeRun(const EngineOptions& opts,
                          const std::string& algoName,
                          const std::string& patternLabel, std::size_t n);

/// Appends the result summary (`result.*` keys) to a run manifest.
void appendResult(obs::Manifest& manifest, const RunResult& result);

}  // namespace apf::sim
