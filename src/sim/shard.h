#pragma once

/// \file shard.h
/// Multi-process sharded campaign execution behind a versioned wire API
/// (docs/API.md, docs/RESILIENCE.md).
///
/// PR 3's thread pool tops out at one process on one machine, but the
/// Monte Carlo campaigns validating the paper's ASYNC claims are
/// embarrassingly parallel across runs. This layer splits a campaign's run
/// indices into contiguous shards, hands each shard to a worker *process*
/// (tools/apf_worker.cpp — spawned locally by the coordinator here, or
/// placed on another machine by an external launcher via `--shard i/k`),
/// and merges the per-shard journals back into one file.
///
/// The wire contract is ShardSpec (`apf.shard.v1`): everything a worker
/// needs to execute any slice of the campaign — scenario (algorithm name,
/// robot count, resolved pattern points, start recipe, scheduler), seeds,
/// the base fault plan (fault::toJson), and the supervisor knobs
/// (watchdog budgets, retry policy). The spec's canonical JSON doubles as
/// the journal config key, so a worker started against the journal of a
/// DIFFERENT campaign — or a spec from a future schema version — refuses
/// loudly instead of merging garbage.
///
/// Determinism contract (tests/shard_test.cpp, tools/kill_resume_check.sh):
///  * runShard(spec, algo, 0, spec.runs) is the single-process campaign:
///    apf_sim's --campaign mode is implemented on it, so the sharded and
///    unsharded paths cannot drift apart.
///  * A run's payload depends only on (spec, global run index, attempt
///    salt) — never on which shard or process executed it. Shard journals
///    record GLOBAL run indices.
///  * mergeShardJournals appends entries in ascending global index through
///    the same CampaignJournal code path a single-process campaign uses,
///    so the merged file is byte-identical to an `APF_JOBS=1` journal by
///    construction — including after a worker or the coordinator was
///    SIGKILLed and resumed.
///  * Worker processes get supervisor-style treatment (wall-clock
///    watchdog -> SIGKILL -> bounded retry -> shard quarantine). A
///    relaunched worker resumes its shard journal, so retries re-run only
///    the runs that never journaled.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "config/configuration.h"
#include "fault/fault.h"
#include "sched/scheduler.h"
#include "sim/algorithm.h"
#include "sim/supervisor.h"

namespace apf::sim {

/// Versioned wire description of a whole campaign (`apf.shard.v1`). Value
/// semantics; `toJson`/`shardSpecFromJson` round-trip every field bit for
/// bit (doubles via obs::jsonNumber, seeds via raw-token parsing), and
/// re-encoding a decoded spec reproduces the exact same bytes — the
/// fixed-point property the journal config key relies on.
struct ShardSpec {
  static constexpr const char* kSchema = "apf.shard.v1";

  std::string algo = "form";     ///< algorithm name (apf_sim --algo spelling)
  std::size_t n = 8;             ///< robots per run
  /// Human label for the pattern ("star", a file path, ...). The points
  /// below are authoritative; the label is bookkeeping for reports.
  std::string patternLabel = "star";
  config::Configuration pattern; ///< resolved target points (wire-embedded)
  /// "random" | "symmetric": regenerated per run from the effective seed.
  /// "points": the fixed `start` configuration below is used for every run.
  std::string startKind = "random";
  config::Configuration start;   ///< only meaningful for startKind "points"
  sched::SchedulerKind sched = sched::SchedulerKind::Async;
  std::uint64_t baseSeed = 1;    ///< run i executes with seed baseSeed + i
  std::uint64_t runs = 1;
  std::uint64_t maxEvents = 1000000;
  double delta = 0.05;
  bool multiplicity = false;
  bool commonChirality = false;
  /// Crash-stop faults: f victims re-drawn per run inside `crashHorizon`
  /// events (fault::planWithRandomCrashes), matching apf_sim --crash.
  int crashF = 0;
  std::uint64_t crashHorizon = 2000;
  /// Base fault plan: the sensor/compute knobs plus the fault-stream seed.
  /// Per-run plans re-draw crash victims from the effective per-run seed
  /// unless `faultSeedSet` pins `fault.seed` for every run.
  fault::FaultPlan fault;
  bool faultSeedSet = false;
  // Supervisor knobs (per RUN, inside a worker; the coordinator's per
  // WORKER watchdog lives in CoordinatorOptions).
  std::uint64_t watchdogEvents = 0;
  std::uint64_t watchdogMs = 0;
  int retries = 2;
};

/// Canonical single-line JSON encoding (schema field first).
std::string toJson(const ShardSpec& spec);
/// Inverse of toJson. Unknown keys are ignored (forward compatibility
/// within v1) but an unknown/missing schema string throws — a worker must
/// never guess at a spec from a different wire version.
ShardSpec shardSpecFromJson(std::string_view text);
ShardSpec loadShardSpec(const std::string& path);
/// Writes toJson() + newline, creating parent directories.
void saveShardSpec(const std::string& path, const ShardSpec& spec);

/// The journal config key: the spec's canonical JSON itself. Any spec
/// difference — including a future schema bump — makes shard journals
/// refuse to merge (CampaignJournal's config-mismatch check).
std::string shardConfigKey(const ShardSpec& spec);

/// Empty string when the spec is executable; otherwise a human-readable
/// reason (pattern/robot count mismatch, crashF >= n, invalid plan, ...).
std::string validateShardSpec(const ShardSpec& spec);

/// Contiguous, balanced partition of [0, runs): shard `index` of `count`
/// owns [lo, hi). Shards differ in size by at most one run and cover the
/// range exactly.
struct ShardRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t size() const { return hi - lo; }
};
ShardRange shardRange(std::uint64_t runs, unsigned index, unsigned count);

/// The per-run supervisor policy encoded in the spec.
SupervisorOptions shardSupervisorOptions(const ShardSpec& spec,
                                         obs::Recorder* recorder = nullptr);

/// Executes ONE run of the campaign: global index `runIndex`, retry salt
/// folded in via `att`. Deterministic given (spec, runIndex, att.seedSalt)
/// — the payload carries no wall-clock or process-identity fields, which
/// is what makes sharded output byte-comparable. This is the exact worker
/// apf_sim's --campaign mode always ran; see the .cpp for the
/// field-by-field contract.
std::string runScenarioPayload(const ShardSpec& spec, const Algorithm& algo,
                               std::uint64_t runIndex, const Attempt& att);

/// Runs the spec's global index range [lo, hi) under the supervisor,
/// journaling (when `journal` is non-null) and reporting with GLOBAL run
/// indices. Already-journaled runs replay without re-execution. When
/// `payloads` is non-null it must have spec.runs slots; completed and
/// replayed payloads land at their global index. jobs follows
/// campaignJobs() resolution. The whole campaign is runShard(spec, algo,
/// 0, spec.runs, ...).
SupervisorReport runShard(const ShardSpec& spec, const Algorithm& algo,
                          std::uint64_t lo, std::uint64_t hi,
                          CampaignJournal* journal, obs::Recorder* recorder,
                          int jobs = 0, CampaignStats* stats = nullptr,
                          std::vector<std::string>* payloads = nullptr);

/// Merges shard journals into `mergedPath`, appending entries in ascending
/// global run index through the same CampaignJournal append path a
/// single-process campaign uses — the merged file is byte-identical to an
/// uninterrupted `APF_JOBS=1` journal of the same spec. Every shard
/// journal must carry this spec's config key (throws otherwise). Returns
/// the number of merged entries (quarantined runs have none).
std::size_t mergeShardJournals(const ShardSpec& spec,
                               const std::vector<std::string>& shardJournals,
                               const std::string& mergedPath);

/// How the coordinator launches and supervises worker processes.
struct CoordinatorOptions {
  /// Worker binary; empty = resolveWorkerPath("") (APF_WORKER, then next
  /// to the current executable).
  std::string workerPath;
  unsigned shards = 4;
  /// Scratch directory for the spec file, per-shard journals, reports, and
  /// worker logs. Created if missing.
  std::string workDir;
  /// Thread-pool width inside each worker (default 1: process-level
  /// parallelism is the point here).
  int jobsPerWorker = 1;
  /// Per-ATTEMPT wall deadline for a worker process; 0 = none. On expiry
  /// the worker is SIGKILLed and retried — its shard journal survives, so
  /// the retry re-runs only what never journaled.
  std::uint64_t workerWallBudgetNanos = 0;
  /// Process-level retry budget per shard (attempt 0 + maxRetries more).
  int maxRetries = 2;
  /// False: fresh campaign — stale shard journals in workDir are removed
  /// first. True: resume — workers continue their shard journals, a
  /// restarted coordinator re-runs nothing that already journaled.
  bool resume = false;
  /// Progress lines on stderr (never stdout — that belongs to the caller's
  /// byte-compared output).
  bool verbose = false;
  /// Where the merged journal lands; empty = `<workDir>/merged.journal`.
  std::string mergedJournalPath;
};

/// One worker-process attempt, classified like AttemptFailure but at
/// process granularity.
struct ShardAttempt {
  int number = 0;
  int exitCode = -1;     ///< process exit code; -1 when signaled
  int termSignal = 0;    ///< terminating signal; 0 when exited
  bool timedOut = false; ///< coordinator watchdog fired (SIGKILL)
};

/// Outcome of one shard: its range, every process attempt, and the
/// worker's own SupervisorReport (parsed back from its report file).
struct ShardOutcome {
  unsigned index = 0;
  ShardRange range;
  bool ok = false;           ///< a worker attempt finished the shard
  std::vector<ShardAttempt> attempts;
  SupervisorReport report;   ///< zero-initialized when !ok
  std::string journalPath;
  std::string logPath;       ///< worker stdout+stderr capture
};

struct CoordinatorReport {
  std::vector<ShardOutcome> shards;
  /// Per-run aggregate: the absorbed worker reports, in shard order.
  SupervisorReport runs;
  std::string mergedJournalPath;
  bool allShardsOk() const;
};

/// Worker binary resolution: `explicitPath` if non-empty, else APF_WORKER
/// (cli::env()), else `apf_worker` next to the running executable, else
/// `../tools/apf_worker` relative to it (bench binaries live in a sibling
/// directory of tools/). Returns "" when nothing exists.
std::string resolveWorkerPath(const std::string& explicitPath);

/// The coordinator: writes the spec into workDir, launches one apf_worker
/// per shard, supervises them (wall watchdog -> SIGKILL -> bounded retry
/// -> shard quarantine), then merges the shard journals into
/// `workDir/merged.journal` and absorbs the worker reports. Exit-code
/// policy: 0/1 complete the attempt; 2 (usage/spec error) is fatal — no
/// retry can fix a bad spec; 4 (shard journal locked by an orphan) and
/// signals/crashes are retryable. Throws std::runtime_error when no
/// worker binary can be resolved or the spec fails validation.
CoordinatorReport runShardedCampaign(const ShardSpec& spec,
                                     const CoordinatorOptions& opts);

}  // namespace apf::sim
