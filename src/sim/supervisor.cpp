#include "sim/supervisor.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "sched/seed.h"

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace apf::sim {

namespace {

/// fsync the stdio stream (after fflush). Durability is the whole point of
/// the journal: a SIGKILL between append() returning and the next line
/// must not lose the entry.
void syncFile(std::FILE* f) {
#if defined(_WIN32)
  _commit(_fileno(f));
#else
  ::fsync(fileno(f));
#endif
}

void truncateFile(std::FILE* f, long length) {
#if defined(_WIN32)
  _chsize(_fileno(f), length);
#else
  if (::ftruncate(fileno(f), static_cast<off_t>(length)) != 0) {
    throw std::runtime_error(std::string("journal: ftruncate failed: ") +
                             std::strerror(errno));
  }
#endif
}

}  // namespace

const char* failureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::TimeoutCycles:
      return "timeout_cycles";
    case FailureKind::TimeoutWall:
      return "timeout_wall";
    case FailureKind::Exception:
      return "exception";
  }
  return "?";
}

std::uint64_t retrySeedSalt(int number) {
  // Attempts 0 and 1 share the base seed: attempt 1 is the same-seed
  // determinism proof, not a new draw. Later attempts rotate through a
  // fixed splitmix64 sequence (sched/seed.h, the shared derivation path)
  // so retried campaigns stay reproducible.
  if (number <= 1) return 0;
  return sched::splitmix64(static_cast<std::uint64_t>(number));
}

bool sameFailure(const AttemptFailure& a, const AttemptFailure& b) {
  return a.kind == b.kind && a.atCycles == b.atCycles &&
         a.message == b.message;
}

void SupervisorReport::absorb(const SupervisorReport& other) {
  items += other.items;
  completed += other.completed;
  replayed += other.replayed;
  retries += other.retries;
  quarantined += other.quarantined;
  timeoutsCycle += other.timeoutsCycle;
  timeoutsWall += other.timeoutsWall;
  exceptions += other.exceptions;
  quarantine.insert(quarantine.end(), other.quarantine.begin(),
                    other.quarantine.end());
}

std::string SupervisorReport::toJson() const {
  std::string quarantineJson = "[";
  for (std::size_t q = 0; q < quarantine.size(); ++q) {
    if (q) quarantineJson += ',';
    const QuarantinedItem& item = quarantine[q];
    std::string attempts = "[";
    for (std::size_t a = 0; a < item.attempts.size(); ++a) {
      if (a) attempts += ',';
      const AttemptFailure& f = item.attempts[a];
      obs::JsonObjectWriter w;
      w.field("kind", failureKindName(f.kind));
      w.field("attempt", f.attempt);
      w.field("seed_salt", f.seedSalt);
      w.field("at_cycles", f.atCycles);
      w.field("message", f.message);
      attempts += w.str();
    }
    attempts += ']';
    obs::JsonObjectWriter w;
    w.field("index", static_cast<std::uint64_t>(item.index));
    w.field("deterministic", item.deterministic);
    w.rawField("attempts", attempts);
    quarantineJson += w.str();
  }
  quarantineJson += ']';

  obs::JsonObjectWriter w;
  w.field("report", "apf.supervisor.v1");
  w.field("items", items);
  w.field("completed", completed);
  w.field("replayed", replayed);
  w.field("retries", retries);
  w.field("quarantined", quarantined);
  w.field("timeouts_cycle", timeoutsCycle);
  w.field("timeouts_wall", timeoutsWall);
  w.field("exceptions", exceptions);
  w.rawField("quarantine", quarantineJson);
  return w.str();
}

void SupervisorReport::write(const std::string& path) const {
  obs::createParentDirs(path);
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("SupervisorReport: cannot open for write: " +
                             path);
  }
  os << toJson() << '\n';
  os.flush();
  if (os.fail()) {
    throw std::runtime_error("SupervisorReport: write failed: " + path);
  }
}

namespace {

FailureKind failureKindFromName(const std::string& name) {
  if (name == "timeout_cycles") return FailureKind::TimeoutCycles;
  if (name == "timeout_wall") return FailureKind::TimeoutWall;
  if (name == "exception") return FailureKind::Exception;
  throw std::runtime_error("supervisor report: unknown failure kind \"" +
                           name + "\"");
}

}  // namespace

SupervisorReport supervisorReportFromJson(std::string_view text) {
  const auto doc = obs::parseJson(text);
  if (!doc || doc->kind != obs::JsonNode::Kind::Object) {
    throw std::runtime_error("supervisor report: malformed JSON");
  }
  const obs::JsonNode* schema = doc->find("report");
  if (schema == nullptr || schema->asString() != "apf.supervisor.v1") {
    throw std::runtime_error(
        "supervisor report: unsupported schema \"" +
        (schema == nullptr ? std::string("(missing)") : schema->asString()) +
        "\" (want apf.supervisor.v1)");
  }
  SupervisorReport r;
  auto u64 = [&](const char* key, std::uint64_t fallback) {
    const obs::JsonNode* v = doc->find(key);
    return v == nullptr ? fallback : v->asU64(fallback);
  };
  r.items = u64("items", 0);
  r.completed = u64("completed", 0);
  r.replayed = u64("replayed", 0);
  r.retries = u64("retries", 0);
  r.quarantined = u64("quarantined", 0);
  r.timeoutsCycle = u64("timeouts_cycle", 0);
  r.timeoutsWall = u64("timeouts_wall", 0);
  r.exceptions = u64("exceptions", 0);
  const obs::JsonNode* quarantine = doc->find("quarantine");
  if (quarantine != nullptr) {
    if (quarantine->kind != obs::JsonNode::Kind::Array) {
      throw std::runtime_error(
          "supervisor report: quarantine is not an array");
    }
    for (const obs::JsonNode& q : quarantine->items) {
      if (q.kind != obs::JsonNode::Kind::Object) {
        throw std::runtime_error(
            "supervisor report: malformed quarantine entry");
      }
      QuarantinedItem item;
      if (const obs::JsonNode* v = q.find("index")) {
        item.index = static_cast<std::size_t>(v->asU64(0));
      }
      if (const obs::JsonNode* v = q.find("deterministic")) {
        item.deterministic = v->asBool(false);
      }
      if (const obs::JsonNode* attempts = q.find("attempts")) {
        if (attempts->kind != obs::JsonNode::Kind::Array) {
          throw std::runtime_error(
              "supervisor report: attempts is not an array");
        }
        for (const obs::JsonNode& a : attempts->items) {
          if (a.kind != obs::JsonNode::Kind::Object) {
            throw std::runtime_error(
                "supervisor report: malformed attempt entry");
          }
          AttemptFailure f;
          if (const obs::JsonNode* v = a.find("kind")) {
            f.kind = failureKindFromName(v->asString());
          }
          if (const obs::JsonNode* v = a.find("attempt")) {
            f.attempt = static_cast<int>(v->asNumber(0));
          }
          if (const obs::JsonNode* v = a.find("seed_salt")) {
            f.seedSalt = v->asU64(0);
          }
          if (const obs::JsonNode* v = a.find("at_cycles")) {
            f.atCycles = v->asU64(0);
          }
          if (const obs::JsonNode* v = a.find("message")) {
            f.message = v->asString();
          }
          item.attempts.push_back(std::move(f));
        }
      }
      r.quarantine.push_back(std::move(item));
    }
  }
  return r;
}

SupervisorReport loadSupervisorReport(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("supervisor report: cannot open: " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return supervisorReportFromJson(buf.str());
}

void appendManifest(const SupervisorOptions& opts,
                    const SupervisorReport& report, obs::Manifest& m) {
  m.set("supervisor.cycle_budget", opts.cycleBudget);
  m.set("supervisor.wall_budget_nanos", opts.wallBudgetNanos);
  m.set("supervisor.max_retries", opts.maxRetries);
  m.set("supervisor.items", report.items);
  m.set("supervisor.completed", report.completed);
  m.set("supervisor.replayed", report.replayed);
  m.set("supervisor.retries", report.retries);
  m.set("supervisor.quarantined", report.quarantined);
  m.set("supervisor.timeouts_cycle", report.timeoutsCycle);
  m.set("supervisor.timeouts_wall", report.timeoutsWall);
  m.set("supervisor.exceptions", report.exceptions);
}

void appendManifestInvariant(const SupervisorOptions& opts,
                             const SupervisorReport& report,
                             obs::Manifest& m) {
  m.set("supervisor.cycle_budget", opts.cycleBudget);
  m.set("supervisor.wall_budget_nanos", opts.wallBudgetNanos);
  m.set("supervisor.max_retries", opts.maxRetries);
  m.set("supervisor.items", report.items);
  // The fresh-vs-replayed split depends on where a campaign was killed;
  // only the sum survives resume (and shard-merge) byte-comparison.
  m.set("supervisor.finished", report.completed + report.replayed);
  m.set("supervisor.retries", report.retries);
  m.set("supervisor.quarantined", report.quarantined);
  m.set("supervisor.timeouts_cycle", report.timeoutsCycle);
  m.set("supervisor.timeouts_wall", report.timeoutsWall);
  m.set("supervisor.exceptions", report.exceptions);
}

namespace detail {

void MergeSink::classify(const AttemptFailure& failure) {
  switch (failure.kind) {
    case FailureKind::TimeoutCycles:
      ++report_.timeoutsCycle;
      break;
    case FailureKind::TimeoutWall:
      ++report_.timeoutsWall;
      break;
    case FailureKind::Exception:
      ++report_.exceptions;
      break;
  }
}

void MergeSink::emitFailure(std::size_t index, const AttemptFailure& failure,
                            bool retried) {
  if (recorder_ == nullptr) return;
  if (failure.kind != FailureKind::Exception) {
    obs::Event ev;
    ev.kind = obs::EventKind::RunTimeout;
    ev.index = eventIndex_++;
    ev.robot = static_cast<std::int64_t>(index);
    ev.phaseTag = failure.attempt;
    ev.bitsUsed = failure.atCycles;
    ev.flag = failure.kind == FailureKind::TimeoutWall;
    recorder_->record(ev);
  }
  if (retried) {
    obs::Event ev;
    ev.kind = obs::EventKind::RunRetried;
    ev.index = eventIndex_++;
    ev.robot = static_cast<std::int64_t>(index);
    ev.phaseTag = failure.attempt + 1;  // the attempt being started
    ev.bitsUsed = retrySeedSalt(failure.attempt + 1);
    recorder_->record(ev);
  }
}

void MergeSink::recordRetries(std::size_t index,
                              const std::vector<AttemptFailure>& failures) {
  for (const AttemptFailure& f : failures) {
    classify(f);
    ++report_.retries;
    emitFailure(index, f, /*retried=*/true);
  }
}

void MergeSink::recordQuarantine(std::size_t index, bool deterministic,
                                 std::vector<AttemptFailure> failures) {
  for (std::size_t k = 0; k < failures.size(); ++k) {
    classify(failures[k]);
    const bool retried = k + 1 < failures.size();
    if (retried) ++report_.retries;
    emitFailure(index, failures[k], retried);
  }
  ++report_.quarantined;
  if (recorder_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::RunQuarantined;
    ev.index = eventIndex_++;
    ev.robot = static_cast<std::int64_t>(index);
    ev.phaseTag = static_cast<int>(failures.size());
    ev.flag = deterministic;
    recorder_->record(ev);
  }
  QuarantinedItem item;
  item.index = index;
  item.deterministic = deterministic;
  item.attempts = std::move(failures);
  report_.quarantine.push_back(std::move(item));
}

void MergeSink::recordCheckpoint(std::size_t index,
                                 std::size_t payloadBytes) {
  if (recorder_ == nullptr) return;
  obs::Event ev;
  ev.kind = obs::EventKind::Checkpoint;
  ev.index = eventIndex_++;
  ev.robot = static_cast<std::int64_t>(index);
  ev.bitsUsed = payloadBytes;
  recorder_->record(ev);
}

}  // namespace detail

CampaignJournal::CampaignJournal(std::string path, std::string configKey,
                                 bool resume)
    : path_(std::move(path)), configKey_(std::move(configKey)) {
  obs::createParentDirs(path_);

  std::string content;
  if (resume) {
    std::ifstream is(path_, std::ios::binary);
    if (is) {
      std::ostringstream buf;
      buf << is.rdbuf();
      content = buf.str();
    }
  }

  std::size_t validLen = 0;
  if (!content.empty()) {
    // Walk complete ('\n'-terminated) lines. The first is the header; the
    // rest are entries. A final unterminated or unparsable tail is the
    // signature of a kill mid-write: drop it (and truncate it away below)
    // so the resumed file can converge byte-identical to an uninterrupted
    // one. Malformed lines elsewhere mean real corruption and throw.
    std::size_t pos = 0;
    bool sawHeader = false;
    while (pos < content.size()) {
      const std::size_t nl = content.find('\n', pos);
      if (nl == std::string::npos) {
        recoveredTornLine_ = true;
        break;
      }
      const std::string_view line(content.data() + pos, nl - pos);
      const auto obj = obs::parseFlatObject(line);
      const bool lastLine = nl + 1 >= content.size();
      if (!obj) {
        if (lastLine) {
          recoveredTornLine_ = true;
          break;
        }
        throw std::runtime_error("journal: corrupt line in " + path_);
      }
      if (!sawHeader) {
        const auto schema = obj->find("journal");
        if (schema == obj->end() ||
            schema->second.asString() != kSchema) {
          throw std::runtime_error("journal: " + path_ +
                                   " is not an apf.journal.v1 file");
        }
        const auto config = obj->find("config");
        if (config == obj->end() ||
            config->second.asString() != configKey_) {
          throw std::runtime_error(
              "journal: config mismatch — " + path_ +
              " records a different campaign; refusing to merge");
        }
        sawHeader = true;
      } else {
        const auto idx = obj->find("i");
        const auto payload = obj->find("payload");
        if (idx == obj->end() ||
            idx->second.kind != obs::JsonValue::Kind::Number ||
            payload == obj->end() ||
            payload->second.kind != obs::JsonValue::Kind::String) {
          if (lastLine) {
            recoveredTornLine_ = true;
            break;
          }
          throw std::runtime_error("journal: malformed entry in " + path_);
        }
        entries_[static_cast<std::size_t>(idx->second.number)] =
            payload->second.string;
      }
      pos = nl + 1;
      validLen = pos;
    }
  }

  const bool haveValidPrefix = validLen > 0;
  file_ = std::fopen(path_.c_str(), haveValidPrefix ? "r+b" : "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("journal: cannot open for write: " + path_);
  }
  if (haveValidPrefix) {
    truncateFile(file_, static_cast<long>(validLen));
    if (std::fseek(file_, static_cast<long>(validLen), SEEK_SET) != 0) {
      throw std::runtime_error("journal: seek failed: " + path_);
    }
  } else {
    obs::JsonObjectWriter w;
    w.field("journal", kSchema);
    w.field("config", configKey_);
    const std::string header = w.str() + '\n';
    if (std::fwrite(header.data(), 1, header.size(), file_) !=
        header.size()) {
      throw std::runtime_error("journal: header write failed: " + path_);
    }
  }
  if (std::fflush(file_) != 0) {
    throw std::runtime_error("journal: flush failed: " + path_);
  }
  syncFile(file_);
}

CampaignJournal::~CampaignJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

const std::string* CampaignJournal::payload(std::size_t index) const {
  const auto it = entries_.find(index);
  return it == entries_.end() ? nullptr : &it->second;
}

void CampaignJournal::append(std::size_t index, const std::string& payload) {
  obs::JsonObjectWriter w;
  w.field("i", static_cast<std::uint64_t>(index));
  w.field("payload", payload);
  const std::string line = w.str() + '\n';
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    throw std::runtime_error("journal: append failed: " + path_);
  }
  syncFile(file_);
  entries_[index] = payload;
}

}  // namespace apf::sim
