#include "sim/shrink.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"
#include "obs/recorder.h"
#include "sim/engine.h"

namespace apf::sim {

/// JSON `[[x,y],...]` with exact (shortest round-trip) coordinates.
std::string pointsJson(const config::Configuration& c) {
  std::string out = "[";
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i) out += ',';
    out += '[';
    out += obs::jsonNumber(c[i].x);
    out += ',';
    out += obs::jsonNumber(c[i].y);
    out += ']';
  }
  out += ']';
  return out;
}

config::Configuration pointsFromJson(const obs::JsonNode& node,
                                     const char* what) {
  if (node.kind != obs::JsonNode::Kind::Array) {
    throw std::runtime_error(std::string(what) + " is not an array");
  }
  std::vector<geom::Vec2> pts;
  pts.reserve(node.items.size());
  for (const obs::JsonNode& p : node.items) {
    if (p.kind != obs::JsonNode::Kind::Array || p.items.size() != 2 ||
        p.items[0].kind != obs::JsonNode::Kind::Number ||
        p.items[1].kind != obs::JsonNode::Kind::Number) {
      throw std::runtime_error(std::string(what) +
                               " entries must be [x,y] pairs");
    }
    pts.push_back({p.items[0].number, p.items[1].number});
  }
  return config::Configuration(std::move(pts));
}

ReplayResult replay(const ReproCase& c, const Algorithm& algo) {
  EngineOptions eopts;
  eopts.seed = c.seed;
  eopts.maxEvents = c.maxEvents;
  eopts.multiplicityDetection = c.multiplicityDetection;
  eopts.commonChirality = c.commonChirality;
  eopts.sched.kind = c.sched;
  eopts.sched.delta = c.delta;
  eopts.sched.earlyStopProb = c.earlyStopProb;
  eopts.fault = c.fault;

  // Local copies: replay probes run back to back and must not share a lazy
  // SEC cache with the caller's instances.
  config::Configuration start = c.start;
  config::Configuration pattern = c.pattern;
  const double startSec = start.sec().radius;
  const bool patternHasMultiplicity = pattern.hasMultiplicity();

  ReplayResult out;
  Engine eng(start, pattern, algo, eopts);

  // Same invariants as sim/fuzzer.cpp, minus the incremental shortcuts
  // (which are exactness-preserving there, so both observers flag the same
  // runs): collision-freedom of the live robots and the SEC growth bound.
  std::uint64_t lastVersion = 0;
  std::string& violation = out.violation;
  eng.setObserver([&](const Engine& e, std::size_t robot) {
    if (e.configVersion() == lastVersion) return;
    lastVersion = e.configVersion();
    if (out.violated) return;
    const config::Configuration& all = e.positions();
    const std::size_t liveCount = all.size() - e.crashedCount();
    if (liveCount < 2) return;
    std::vector<geom::Vec2> live;
    live.reserve(liveCount);
    for (std::size_t j = 0; j < all.size(); ++j) {
      if (!e.isCrashed(j)) live.push_back(all[j]);
    }
    const geom::Tol tol{1e-9, 1e-9};
    if (!patternHasMultiplicity &&
        config::Configuration(live).hasMultiplicity(tol)) {
      out.violated = true;
      out.violationKind = "collision";
      out.violationEvent = e.metrics().events;
      std::ostringstream os;
      os << "collision: event " << e.metrics().events << ", robot " << robot;
      if (e.crashedCount() > 0) os << " (" << e.crashedCount() << " crashed)";
      violation = os.str();
      return;
    }
    const double growth =
        geom::smallestEnclosingCircle(live).radius / startSec;
    if (growth > FuzzResult::kSecGrowthBound) {
      out.violated = true;
      out.violationKind = "sec_growth";
      out.violationEvent = e.metrics().events;
      std::ostringstream os;
      os << "SEC grew x" << growth << ": event " << e.metrics().events;
      violation = os.str();
    }
  });

  out.run = eng.run();
  return out;
}

ReproCase reproFromFailure(const std::string& algoName,
                           const config::Configuration& start,
                           const config::Configuration& pattern,
                           const FuzzOptions& opts,
                           const FuzzFailure& failure) {
  ReproCase c;
  c.algo = algoName;
  c.start = start;
  c.pattern = pattern;
  c.seed = failure.seed;
  c.maxEvents = opts.maxEventsPerRun;
  c.delta = opts.delta;
  c.earlyStopProb = failure.earlyStopProb;
  c.multiplicityDetection = opts.multiplicityDetection;
  c.sched = sched::SchedulerKind::Async;  // the fuzzer's scheduler
  c.fault = failure.plan;
  c.violationKind = failure.violationKind;
  return c;
}

std::string toJson(const ReproCase& c) {
  obs::JsonObjectWriter w;
  w.field("repro", ReproCase::kSchema);
  w.field("algo", c.algo);
  w.rawField("start", pointsJson(c.start));
  w.rawField("pattern", pointsJson(c.pattern));
  w.field("seed", c.seed);
  w.field("max_events", c.maxEvents);
  w.field("delta", c.delta);
  w.field("early_stop_prob", c.earlyStopProb);
  w.field("multiplicity_detection", c.multiplicityDetection);
  w.field("common_chirality", c.commonChirality);
  w.field("sched", sched::schedulerName(c.sched));
  w.rawField("fault", fault::toJson(c.fault));
  w.field("violation_kind", c.violationKind);
  return w.str();
}

ReproCase reproFromJson(std::string_view text) {
  const auto doc = obs::parseJson(text);
  if (!doc || doc->kind != obs::JsonNode::Kind::Object) {
    throw std::runtime_error("repro: malformed JSON");
  }
  const obs::JsonNode* schema = doc->find("repro");
  if (schema == nullptr || schema->asString() != ReproCase::kSchema) {
    throw std::runtime_error("repro: not an apf.repro.v1 document");
  }
  ReproCase c;
  if (const obs::JsonNode* v = doc->find("algo")) c.algo = v->asString();
  const obs::JsonNode* start = doc->find("start");
  const obs::JsonNode* pattern = doc->find("pattern");
  if (start == nullptr || pattern == nullptr) {
    throw std::runtime_error("repro: missing start/pattern");
  }
  c.start = pointsFromJson(*start, "repro: start");
  c.pattern = pointsFromJson(*pattern, "repro: pattern");
  if (const obs::JsonNode* v = doc->find("seed")) c.seed = v->asU64(c.seed);
  if (const obs::JsonNode* v = doc->find("max_events")) {
    c.maxEvents = v->asU64(c.maxEvents);
  }
  if (const obs::JsonNode* v = doc->find("delta")) c.delta = v->asNumber();
  if (const obs::JsonNode* v = doc->find("early_stop_prob")) {
    c.earlyStopProb = v->asNumber();
  }
  if (const obs::JsonNode* v = doc->find("multiplicity_detection")) {
    c.multiplicityDetection = v->asBool();
  }
  if (const obs::JsonNode* v = doc->find("common_chirality")) {
    c.commonChirality = v->asBool();
  }
  if (const obs::JsonNode* v = doc->find("sched")) {
    const auto kind = sched::schedulerFromName(v->asString());
    if (!kind) {
      throw std::runtime_error("repro: unknown scheduler \"" +
                               v->asString() + "\"");
    }
    c.sched = *kind;
  }
  if (const obs::JsonNode* v = doc->find("fault")) {
    c.fault = fault::planFromJson(*v);
  }
  if (const obs::JsonNode* v = doc->find("violation_kind")) {
    c.violationKind = v->asString();
  }
  return c;
}

ReproCase loadRepro(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("repro: cannot open: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return reproFromJson(buf.str());
}

void saveRepro(const std::string& path, const ReproCase& c) {
  obs::createParentDirs(path);
  std::ofstream os(path);
  if (!os) throw std::runtime_error("repro: cannot open for write: " + path);
  os << toJson(c) << '\n';
  os.flush();
  if (os.fail()) throw std::runtime_error("repro: write failed: " + path);
}

namespace {

/// Candidate with robot k removed: drops start[k] and pattern point k
/// (keeping |start| == |pattern|), discards crashes aimed at k, and remaps
/// higher victim indices down by one.
ReproCase withoutRobot(const ReproCase& c, std::size_t k) {
  ReproCase cand = c;
  cand.start = c.start.without(k);
  cand.pattern = c.pattern.without(std::min(k, c.pattern.size() - 1));
  cand.fault.crashes.clear();
  for (const fault::CrashFault& f : c.fault.crashes) {
    if (f.robot == k) continue;
    fault::CrashFault g = f;
    if (g.robot > k) --g.robot;
    cand.fault.crashes.push_back(g);
  }
  return cand;
}

}  // namespace

ShrinkResult shrink(const ReproCase& failing, const Algorithm& algo,
                    const ShrinkOptions& opts) {
  ShrinkResult out;
  out.minimized = failing;

  ReplayResult base = replay(out.minimized, algo);
  ++out.probes;
  out.initialReproduced = base.reproduces(out.minimized);
  if (!out.initialReproduced) return out;
  if (out.minimized.violationKind.empty()) {
    // Adopt the observed kind so every later candidate must reproduce THE
    // SAME violation, not merely some violation.
    out.minimized.violationKind = base.violationKind;
  }

  auto tryCandidate = [&](ReproCase cand) {
    if (out.probes >= opts.maxProbes) return false;
    ++out.probes;
    ReplayResult r;
    try {
      r = replay(cand, algo);
    } catch (const std::exception&) {
      return false;  // candidate broke an engine precondition — reject
    }
    if (!r.violated || r.violationKind != out.minimized.violationKind) {
      return false;
    }
    out.minimized = std::move(cand);
    ++out.accepted;
    return true;
  };

  bool progress = true;
  for (int pass = 0; progress && pass < opts.maxPasses; ++pass) {
    progress = false;

    // Robots, biggest payoff first. Keep the index in place after an
    // accepted removal (the next robot slid into slot k).
    for (std::size_t k = 0; out.minimized.start.size() > 2 &&
                            k < out.minimized.start.size();) {
      if (tryCandidate(withoutRobot(out.minimized, k))) {
        progress = true;
        ++out.robotsRemoved;
      } else {
        ++k;
      }
    }

    // Crash-plan entries.
    for (std::size_t k = 0; k < out.minimized.fault.crashes.size();) {
      ReproCase cand = out.minimized;
      cand.fault.crashes.erase(cand.fault.crashes.begin() +
                               static_cast<std::ptrdiff_t>(k));
      if (tryCandidate(std::move(cand))) {
        progress = true;
        ++out.crashesRemoved;
      } else {
        ++k;
      }
    }

    // Probabilistic fault knobs: zero each; for sigma, fall back to
    // halving when zero loses the violation.
    double fault::FaultPlan::* const probKnobs[] = {
        &fault::FaultPlan::omitProb, &fault::FaultPlan::multFlipProb,
        &fault::FaultPlan::dropProb, &fault::FaultPlan::truncProb};
    for (const auto knob : probKnobs) {
      if (out.minimized.fault.*knob <= 0.0) continue;
      ReproCase cand = out.minimized;
      cand.fault.*knob = 0.0;
      if (tryCandidate(std::move(cand))) {
        progress = true;
        ++out.knobsCleared;
      }
    }
    if (out.minimized.fault.noiseSigma > 0.0) {
      ReproCase cand = out.minimized;
      cand.fault.noiseSigma = 0.0;
      if (tryCandidate(std::move(cand))) {
        progress = true;
        ++out.knobsCleared;
      } else if (out.minimized.fault.noiseSigma > 1e-6) {
        cand = out.minimized;
        cand.fault.noiseSigma *= 0.5;
        if (tryCandidate(std::move(cand))) {
          progress = true;
          ++out.knobsCleared;
        }
      }
    }

    // Adversary aggression: the mildest earlyStopProb that still breaks.
    for (const double target : {0.0, 0.1, 0.25, 0.5}) {
      if (target >= out.minimized.earlyStopProb) break;
      ReproCase cand = out.minimized;
      cand.earlyStopProb = target;
      if (tryCandidate(std::move(cand))) {
        progress = true;
        break;
      }
    }
  }

  if (opts.shrinkEventBudget && out.probes < opts.maxProbes) {
    // Clamp the event budget to just past the violation so the final repro
    // replays fast. Margin keeps the budget from sitting exactly on the
    // violation event.
    ++out.probes;
    const ReplayResult r = replay(out.minimized, algo);
    if (r.violated && r.violationEvent + 64 < out.minimized.maxEvents) {
      ReproCase cand = out.minimized;
      cand.maxEvents = r.violationEvent + 64;
      tryCandidate(std::move(cand));
    }
  }
  return out;
}

}  // namespace apf::sim
