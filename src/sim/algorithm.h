#pragma once

/// \file algorithm.h
/// The robot-algorithm interface: a pure function from a local snapshot to a
/// movement path, exactly the Compute step of the Look-Compute-Move model.

#include <optional>
#include <string>

#include "config/configuration.h"
#include "geom/path.h"
#include "sched/rng.h"

namespace apf::sim {

/// What a robot observes during Look, in its own local coordinate system
/// (unknown rotation, scale, and possibly reflection relative to the global
/// frame; origin at the robot's own position at Look time).
struct Snapshot {
  /// Positions of all robots (multiplicity points appear repeated).
  config::Configuration robots;
  /// Index of the observing robot's own position in `robots`.
  std::size_t selfIndex = 0;
  /// The target pattern, as this robot received it: an arbitrary similarity
  /// image of the true pattern, in the robot's coordinate system.
  config::Configuration pattern;
  /// Whether this robot can count robots at a multiplicity point. Without
  /// it, a multiplicity point is indistinguishable from a single robot.
  bool multiplicityDetection = false;
};

/// The Compute result: a path to follow (empty path = stay still), plus
/// bookkeeping for the metrics layer.
struct Action {
  geom::Path path;
  /// Which algorithm phase produced this decision (see core/phases.h); used
  /// by metrics only, not by the model.
  int phaseTag = 0;
  /// True when this Compute flipped the election's random bit (set by
  /// psi_RSB); the engine turns it into an election_round telemetry event.
  /// Observability only, not part of the model.
  bool electionRound = false;

  bool isMove() const { return !path.empty(); }

  static Action stay(int tag = 0) { return Action{geom::Path{}, tag}; }
};

/// A mobile-robot algorithm. Implementations must be deterministic given
/// the snapshot and the bits drawn from `rng`, oblivious (no state between
/// calls), and anonymous (no use of robot indices beyond selfIndex).
class Algorithm {
 public:
  virtual ~Algorithm() = default;
  virtual Action compute(const Snapshot& snap, sched::RandomSource& rng) const = 0;
  virtual std::string name() const = 0;
};

}  // namespace apf::sim
