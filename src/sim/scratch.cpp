#include "sim/scratch.h"

namespace apf::sim {

void Scratch::reserveFor(std::size_t n) {
  points.reserve(n + 1);
  live.reserve(n);
  reduced.reserve(n);
  movers.reserve(n);
  active.reserve(n);
  liveIdx.reserve(n);
  eligible.reserve(n);
  drop.reserve(n);
}

}  // namespace apf::sim
