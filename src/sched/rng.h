#pragma once

/// \file rng.h
/// Random source with bit accounting.
///
/// The paper's headline randomness claim is "a single random bit per robot
/// per Look-Compute-Move cycle"; the Yamauchi-Yamashita baseline instead
/// draws points uniformly from continuous segments (infinitely many bits in
/// the model, 53 mantissa bits per draw at double resolution). To compare
/// the two, every random draw flows through a RandomSource that counts the
/// bits it hands out.

#include <cstdint>
#include <random>

namespace apf::sched {

/// Counting random source. One instance per simulation; algorithms receive
/// it at Compute time.
class RandomSource {
 public:
  explicit RandomSource(std::uint64_t seed) : rng_(seed) {}

  /// One fair random bit (counts 1 bit).
  bool bit() {
    bits_ += 1;
    return (rng_() & 1u) != 0;
  }

  /// Uniform double in [0, 1) (counts 53 bits — the resolution of the
  /// continuous draw at double precision).
  double uniform() {
    bits_ += 53;
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
  }

  /// Total bits consumed so far.
  std::uint64_t bitsConsumed() const { return bits_; }

  /// Raw engine access for NON-ALGORITHM uses (scheduler/adversary choices);
  /// does not count toward algorithm randomness.
  std::mt19937_64& adversaryEngine() { return rng_; }

 private:
  std::mt19937_64 rng_;
  std::uint64_t bits_ = 0;
};

}  // namespace apf::sched
