#include "sched/scheduler.h"

#include "obs/manifest.h"

namespace apf::sched {

const char* schedulerName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::FSync:
      return "FSYNC";
    case SchedulerKind::SSync:
      return "SSYNC";
    case SchedulerKind::Async:
      return "ASYNC";
    case SchedulerKind::Scripted:
      return "SCRIPTED";
  }
  return "?";
}

std::optional<SchedulerKind> schedulerFromName(std::string_view name) {
  if (name == "FSYNC" || name == "fsync") return SchedulerKind::FSync;
  if (name == "SSYNC" || name == "ssync") return SchedulerKind::SSync;
  if (name == "ASYNC" || name == "async") return SchedulerKind::Async;
  if (name == "SCRIPTED" || name == "scripted") {
    return SchedulerKind::Scripted;
  }
  return std::nullopt;
}

void appendManifest(const SchedulerOptions& opts, obs::Manifest& m) {
  m.set("sched.kind", schedulerName(opts.kind));
  m.set("sched.delta", opts.delta);
  m.set("sched.fairness_bound", opts.fairnessBound);
  m.set("sched.early_stop_prob", opts.earlyStopProb);
  m.set("sched.activation_prob", opts.activationProb);
}

}  // namespace apf::sched
