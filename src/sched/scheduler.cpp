#include "sched/scheduler.h"

namespace apf::sched {

const char* schedulerName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::FSync:
      return "FSYNC";
    case SchedulerKind::SSync:
      return "SSYNC";
    case SchedulerKind::Async:
      return "ASYNC";
    case SchedulerKind::Scripted:
      return "SCRIPTED";
  }
  return "?";
}

}  // namespace apf::sched
