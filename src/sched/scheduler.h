#pragma once

/// \file scheduler.h
/// Scheduling disciplines and adversary parameters (paper §1-2).
///
/// FSYNC: all robots execute Look, Compute, Move in lock-step rounds.
/// SSYNC: each round an arbitrary nonempty subset executes one atomic cycle.
/// ASYNC: Look, Compute, and partial Moves of different robots interleave
/// arbitrarily; snapshots go stale, moving robots are observed mid-path, and
/// robots pause for arbitrarily long (bounded only by fairness).
///
/// The adversary also controls movement: it may stop a moving robot anywhere
/// along its computed path after the robot has traveled at least delta
/// (non-rigid movement; delta unknown to the robots).

#include <cstdint>
#include <optional>
#include <string_view>

namespace apf::obs {
class Manifest;
}

namespace apf::sched {

enum class SchedulerKind {
  FSync,
  SSync,
  Async,
  /// Deterministic, user-authored event list (see EngineOptions::script):
  /// the strongest adversary of all — tests use it to construct exact
  /// stale-snapshot races and worst-case stop patterns.
  Scripted,
};

/// One scripted adversary decision.
struct ScriptedEvent {
  enum class Op {
    Look,     ///< robot captures its snapshot
    Compute,  ///< robot computes on its stored snapshot
    Move,     ///< robot advances along its path by `distance` (clamped to
              ///< [delta, remaining]; 0 means "to the destination")
    Crash,    ///< crash-stop fault: the robot halts exactly where it is
              ///< (mid-path included) and never acts again; it stays
              ///< visible to every later snapshot
  };
  std::size_t robot = 0;
  Op op = Op::Look;
  double distance = 0.0;
};

struct SchedulerOptions {
  SchedulerKind kind = SchedulerKind::Async;
  /// Minimum distance a robot travels before the adversary may stop it.
  double delta = 0.05;
  /// Fairness: every robot makes progress at least once in any window of
  /// this many scheduler events.
  int fairnessBound = 200;
  /// ASYNC: probability that the adversary stops a moving robot as early as
  /// it legally can (aggressive stop-at-delta) instead of letting it run.
  double earlyStopProb = 0.5;
  /// SSYNC: probability that each robot is included in a round's subset.
  double activationProb = 0.5;
};

const char* schedulerName(SchedulerKind kind);

/// Inverse of schedulerName, also accepting the lowercase CLI spellings
/// ("fsync", "ssync", "async", "scripted"). nullopt for anything else.
std::optional<SchedulerKind> schedulerFromName(std::string_view name);

/// Records every SchedulerOptions field under `sched.*` manifest keys.
void appendManifest(const SchedulerOptions& opts, obs::Manifest& manifest);

}  // namespace apf::sched
