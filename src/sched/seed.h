#pragma once

/// \file seed.h
/// The repository's single audited seed-derivation path. Every place that
/// turns one base seed into a family of decorrelated streams — supervisor
/// retry salts, fault-injection streams, adaptive-campaign batch seeds —
/// goes through the splitmix64 finalizer below, so the derivation can be
/// reviewed (and, if ever necessary, changed) in exactly one place.
///
/// splitmix64 is a bijective avalanche mixer: distinct inputs give distinct
/// outputs, and flipping any input bit flips each output bit with
/// probability ~1/2. That makes `sampleSeed(base, i)` families safe to feed
/// to std::mt19937_64 even when callers use consecutive indices, and keeps
/// seed arithmetic (XOR-folding salts, index offsets) free of the
/// correlated-low-bits trap of raw `base + i` seeding.

#include <cstdint>

namespace apf::sched {

/// splitmix64 finalizer (Steele, Lea & Flood; public-domain reference
/// constants). Deterministic, dependency-free, identical on every platform.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Seed for the `index`-th sample of a campaign rooted at `base`.
/// Mixing the index *before* folding it into the base keeps nearby indices
/// decorrelated, and mixing again afterwards decorrelates nearby bases —
/// sampleSeed(1, k) and sampleSeed(2, k) share no obvious structure. The
/// adaptive estimation driver (src/est/adaptive.h) derives every trial seed
/// through this function, so a stopping decision replays exactly from
/// (base seed, sample index) alone.
constexpr std::uint64_t sampleSeed(std::uint64_t base, std::uint64_t index) {
  return splitmix64(base ^ splitmix64(index));
}

}  // namespace apf::sched
