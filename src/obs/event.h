#pragma once

/// \file event.h
/// Typed telemetry events emitted by the simulation engine. One Event is a
/// fixed-size POD so the hot path never allocates; sinks decide how (and
/// whether) to serialize it.
///
/// Event stream contract (enforced by tests/obs_test.cpp and
/// tests/fault_test.cpp):
///  * a run emits exactly one RunStart (index 0) and one RunEnd (last);
///  * indexes are dense and strictly increasing;
///  * one Compute event is emitted per algorithm activation, so the
///    per-phase Compute counts of a log equal `Metrics::phaseActivations`;
///  * every ElectionRound is paired with the Compute of the same
///    activation (same robot, same scheduler event);
///  * one FaultInjected event is emitted per injected fault, so a log's
///    FaultInjected count equals `Metrics::faultsInjected`, and its
///    RobotCrashed count equals `Metrics::crashed`.

#include <cstdint>

namespace apf::obs {

enum class EventKind : std::uint8_t {
  RunStart,         ///< engine starts executing (robot = -1)
  Look,             ///< robot captured a snapshot
  Compute,          ///< robot ran the algorithm on its stored snapshot
  MoveStep,         ///< robot advanced along its path (possibly partially)
  CycleComplete,    ///< robot finished a Look-Compute-Move cycle
  PhaseTransition,  ///< robot's computed phase tag changed
  ElectionRound,    ///< a Compute flipped the election's random bit
  FaultInjected,    ///< a sensor/compute fault fired (see Event::faultKind)
  RobotCrashed,     ///< a crash-stop fault permanently halted a robot
  RunEnd,           ///< engine finished (robot = -1)
  // Campaign-supervisor events (sim/supervisor.h). They concern campaign
  // ITEMS, not robots: `robot` carries the item index, and they are emitted
  // on the merge thread, in merge order, so a supervised campaign's event
  // log is deterministic.
  RunTimeout,      ///< a supervised attempt hit its watchdog deadline
  RunRetried,      ///< a failed item is being retried (possibly reseeded)
  RunQuarantined,  ///< an item exhausted its retry budget
  Checkpoint,      ///< an item's result was journaled (fsync'd)
  // Adaptive-estimation events (est/adaptive.h). Like supervisor events
  // they concern campaign structure, not robots: `robot` carries the batch
  // index, and they are emitted on the driver thread with wallNanos = 0 so
  // adaptive reports stay byte-deterministic.
  BatchScheduled,     ///< an adaptive driver committed to a sample batch
  EstimateConverged,  ///< a stopping rule fired before the max budget
};

/// Stable wire name (used as the "ev" field of JSONL lines).
const char* eventKindName(EventKind kind);

/// Which injector produced a FaultInjected/RobotCrashed event. Kept here —
/// not in src/fault — because it is telemetry vocabulary: sinks and
/// apf_report must name fault kinds without depending on the fault library.
enum class FaultKind : std::uint8_t {
  None,
  Crash,             ///< crash-stop: robot halted forever
  SensorNoise,       ///< snapshot positions perturbed by Gaussian noise
  SensorOmission,    ///< >= 1 robot omitted from a snapshot
  MultiplicityFlip,  ///< multiplicity under/over-count in a snapshot
  ComputeDrop,       ///< computed path discarded before moving
  ComputeTruncate,   ///< computed path truncated below its full length
};

/// Stable wire name (the "fault" field of JSONL lines).
const char* faultKindName(FaultKind kind);

struct Event {
  EventKind kind = EventKind::RunStart;
  /// Dense per-run log index, starting at 0.
  std::uint64_t index = 0;
  /// Nanoseconds since RunStart (steady clock).
  std::uint64_t wallNanos = 0;
  /// Robot the event concerns; -1 for run-level events. Supervisor events
  /// repurpose it as the campaign item index.
  std::int64_t robot = -1;
  /// Phase tag (core/phases.h) of the activation; Compute, CycleComplete,
  /// PhaseTransition, ElectionRound. Supervisor events repurpose it as the
  /// attempt number.
  int phaseTag = 0;
  /// PhaseTransition only: the tag being left.
  int phaseFrom = 0;
  /// Scheduler events processed so far (Metrics::events at emission).
  std::uint64_t schedEvent = 0;
  /// Configuration version at emission (bumped on every position change).
  std::uint64_t configVersion = 0;
  /// Compute/ElectionRound: algorithm random bits consumed by this
  /// activation.
  std::uint64_t bitsUsed = 0;
  /// Compute: snapshot staleness in configuration versions
  /// (configVersion at compute minus version captured at Look).
  std::uint64_t staleness = 0;
  /// Compute: wall time of the algorithm call (0 unless timing enabled).
  std::uint64_t durNanos = 0;
  /// MoveStep: distance advanced by this step; RunEnd: total distance;
  /// FaultInjected: fault magnitude (omitted-robot count for
  /// SensorOmission, truncation fraction for ComputeTruncate, sigma for
  /// SensorNoise).
  double distance = 0.0;
  /// MoveStep: path completed; RunEnd: run succeeded. Supervisor events:
  /// RunTimeout — deadline was wall-clock (vs cycle budget); RunQuarantined
  /// — failure proved deterministic by a same-seed retry.
  bool flag = false;
  /// FaultInjected / RobotCrashed: which injector fired.
  FaultKind faultKind = FaultKind::None;
};

}  // namespace apf::obs
