#pragma once

/// \file span.h
/// Trace-span profiler: wall-time spans with categories and integer args,
/// recorded into thread-local append-only buffers and exported as Chrome
/// trace-event JSON (loadable in chrome://tracing and Perfetto).
///
/// The layer follows the same null-sink-is-free contract as
/// `obs::Recorder`: when no SpanCollector is installed, a would-be span
/// costs exactly one relaxed atomic load and a predictable branch — no
/// clock reads, no allocation, no TLS registration — so instrumented and
/// uninstrumented runs are bit-identical (the spans never touch any RNG).
///
/// Recording is multi-thread safe by construction: each thread appends to
/// its own buffer, and the only lock is taken once per (thread, collector)
/// pair at registration. Draining (`snapshot` / `writeChromeTrace`) must
/// only happen while no thread is recording — in practice after campaign
/// workers have joined or at the end of main(), which is when every caller
/// in this repository exports its trace.
///
/// Usage:
///   obs::SpanCollector collector;
///   collector.install();                       // process-wide
///   {
///     obs::ScopedSpan span("compute", "engine", "robot", 3);
///     span.arg2("phase", tag);                 // args may be added late
///     ...
///   }
///   obs::SpanCollector::uninstall();
///   collector.writeChromeTrace("out.trace.json");

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/stats.h"

namespace apf::obs {

/// One completed span. `name`, `cat`, and arg names must point at storage
/// that outlives the collector (string literals in practice) — spans are
/// fixed-size PODs so the record path never allocates.
struct Span {
  const char* name = nullptr;
  const char* cat = "";
  std::uint64_t startNanos = 0;
  std::uint64_t durNanos = 0;
  const char* arg1Name = nullptr;  ///< nullptr = no first arg
  std::int64_t arg1 = 0;
  const char* arg2Name = nullptr;  ///< nullptr = no second arg
  std::int64_t arg2 = 0;
};

class SpanCollector {
 public:
  /// Per-thread buffer cap: beyond it spans are counted as dropped rather
  /// than recorded, bounding memory on pathological runs. The default
  /// (4M spans/thread, 64 B each) is far above any workload in the repo.
  explicit SpanCollector(std::size_t maxSpansPerThread = std::size_t{1}
                                                         << 22);
  ~SpanCollector();
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Makes this collector the process-wide recording target.
  void install();
  /// Detaches whatever collector is installed (spans become free again).
  static void uninstall();
  /// Currently installed collector, or nullptr (one relaxed load).
  static SpanCollector* current();

  /// Appends a finished span to the calling thread's buffer (registering
  /// the thread on first use). Safe to call concurrently from any number
  /// of threads.
  void append(const Span& span);

  /// All recorded spans sorted by start time. Only call while no thread is
  /// recording (see file comment).
  std::vector<Span> snapshot() const;
  /// Spans discarded because a thread buffer hit its cap.
  std::uint64_t droppedCount() const;
  /// Threads that have recorded at least one span.
  std::size_t threadCount() const;

  /// Writes the Chrome trace-event JSON document
  /// (`{"traceEvents":[...]}`, "X" complete events, ts/dur in
  /// microseconds). Same quiescence requirement as snapshot().
  void writeChromeTrace(std::ostream& os) const;
  /// Same, to a file; throws std::runtime_error on open/write failure —
  /// a requested trace is never silently lost.
  void writeChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuf {
    std::vector<Span> spans;
    std::uint64_t dropped = 0;
    int tid = 0;
  };

  /// The calling thread's buffer, registering it under `mu_` on first use.
  ThreadBuf& threadBuf();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuf>> threads_;
  std::size_t maxPerThread_;
};

namespace detail {
extern std::atomic<SpanCollector*> g_spanCollector;
}  // namespace detail

inline SpanCollector* SpanCollector::current() {
  return detail::g_spanCollector.load(std::memory_order_relaxed);
}

/// RAII span: captures the installed collector and the start time at
/// construction, appends the completed span at scope exit. When no
/// collector is installed the constructor is a load + branch and the
/// destructor a branch — nothing else happens.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat) {
    if (SpanCollector* c = SpanCollector::current()) start(c, name, cat);
  }
  ScopedSpan(const char* name, const char* cat, const char* arg1Name,
             std::int64_t arg1) {
    if (SpanCollector* c = SpanCollector::current()) {
      start(c, name, cat);
      span_.arg1Name = arg1Name;
      span_.arg1 = arg1;
    }
  }
  ~ScopedSpan() {
    if (collector_ != nullptr) {
      span_.durNanos = nowNanos() - span_.startNanos;
      collector_->append(span_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Sets/overwrites the first integer arg (no-op when recording is off);
  /// usable after construction for values only known late in the scope.
  void arg1(const char* name, std::int64_t value) {
    if (collector_ != nullptr) {
      span_.arg1Name = name;
      span_.arg1 = value;
    }
  }
  /// Sets/overwrites the second integer arg (no-op when recording is off).
  void arg2(const char* name, std::int64_t value) {
    if (collector_ != nullptr) {
      span_.arg2Name = name;
      span_.arg2 = value;
    }
  }
  /// True when a collector was installed at construction.
  bool active() const { return collector_ != nullptr; }

 private:
  void start(SpanCollector* c, const char* name, const char* cat) {
    collector_ = c;
    span_.name = name;
    span_.cat = cat;
    span_.startNanos = nowNanos();
  }

  SpanCollector* collector_ = nullptr;
  Span span_;
};

}  // namespace apf::obs
