#pragma once

/// \file recorder.h
/// Event sinks. The engine holds a `Recorder*` that is nullptr by default,
/// so a disabled run pays exactly one predictable branch per would-be event
/// and zero allocations; tests assert a null-sink run is bit-identical to
/// an uninstrumented one.
///
/// Sinks provided:
///  * NullRecorder   — virtual no-op, for call sites that want a non-null
///                     sink object;
///  * MemoryRecorder — appends events to a vector (tests, in-process
///                     analysis);
///  * JsonlRecorder  — one JSON object per line, the interchange format
///                     `apf_report` consumes.

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "obs/event.h"

namespace apf::obs {

/// Creates the parent directory of `path` (and any missing ancestors) so
/// file sinks can write under results/ trees that do not exist yet. Best
/// effort: failures are left for the subsequent open() to report.
void createParentDirs(const std::string& path);

class Recorder {
 public:
  virtual ~Recorder() = default;
  virtual void record(const Event& event) = 0;
  virtual void flush() {}
};

class NullRecorder final : public Recorder {
 public:
  void record(const Event&) override {}
};

class MemoryRecorder final : public Recorder {
 public:
  void record(const Event& event) override { events_.push_back(event); }
  const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

/// Serializes one event as a single-line JSON object (no trailing newline).
std::string toJsonLine(const Event& event);

class JsonlRecorder final : public Recorder {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonlRecorder(const std::string& path);
  /// Writes to an externally owned stream (tests).
  explicit JsonlRecorder(std::ostream& os);
  ~JsonlRecorder() override;

  void record(const Event& event) override;
  void flush() override;

 private:
  std::ofstream file_;
  std::ostream* os_ = nullptr;
  std::string path_;
};

}  // namespace apf::obs
