/// \file alloc_hook.cpp
/// Opt-in allocation-counting hook. NOT part of any library: an executable
/// that wants apf::obs::allocStats() to report real numbers adds this file
/// to its own sources (bench_perf, scratch_test). Linking it does two
/// things: the strong definitions below override the weak inactive ones in
/// alloc.cpp, and the global operator new/delete replacements route every
/// allocation through two relaxed atomic increments.
///
/// The replacements deliberately keep the default semantics (malloc/free,
/// std::bad_alloc on exhaustion) so behavior is identical minus the
/// counting; under ASan the malloc call below resolves to ASan's
/// interceptor, so the hook composes with sanitizers instead of fighting
/// them (the CI ASan lane runs scratch_test to prove this stays true).

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/alloc.h"

namespace {

std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_bytes{0};

void* countedAlloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);
}

}  // namespace

namespace apf::obs {

bool allocCountingActive() { return true; }

AllocStats allocStats() {
  return {g_news.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed)};
}

}  // namespace apf::obs

void* operator new(std::size_t size) {
  if (void* p = countedAlloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = countedAlloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return countedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return countedAlloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
