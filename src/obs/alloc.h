#pragma once

/// \file alloc.h
/// Allocation accounting for benchmarks and tests.
///
/// `allocStats()` reports the process-wide count (and byte volume) of
/// `operator new` calls — but only in executables that opt in by linking
/// `src/obs/alloc_hook.cpp`, which replaces the global allocation functions
/// with counting wrappers. Everywhere else the weak definitions in alloc.cpp
/// apply: `allocCountingActive()` is false, the stats stay zero, and no
/// allocation function is replaced, so release builds pay literally nothing.
///
/// The hook itself is two relaxed atomic increments per `operator new` —
/// inert by design under sanitizers too (ASan intercepts malloc below the
/// operator-new layer, so the counting wrapper composes with it; the CI
/// ASan lane runs scratch_test, which links the hook, to prove it).
///
/// Measurement protocol (see bench_perf's engine hot loop): snapshot
/// `allocStats()`, run the region of interest, subtract. Counters are
/// monotonically increasing and never reset.

#include <cstdint>

namespace apf::obs {

struct AllocStats {
  /// Number of operator-new calls since process start.
  std::uint64_t news = 0;
  /// Bytes requested by those calls.
  std::uint64_t bytes = 0;
};

/// True when this executable linked the counting hook (alloc_hook.cpp).
bool allocCountingActive();

/// Current counters; all-zero when counting is inactive.
AllocStats allocStats();

}  // namespace apf::obs
