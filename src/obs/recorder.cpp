#include "obs/recorder.h"

#include <filesystem>
#include <stdexcept>

#include "obs/json.h"

namespace apf::obs {

void createParentDirs(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (parent.empty()) return;
  // Best effort: a race or permission problem surfaces as the open failure
  // the caller already reports, with the real path in the message.
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
}

const char* eventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::RunStart:
      return "run_start";
    case EventKind::Look:
      return "look";
    case EventKind::Compute:
      return "compute";
    case EventKind::MoveStep:
      return "move_step";
    case EventKind::CycleComplete:
      return "cycle_complete";
    case EventKind::PhaseTransition:
      return "phase_transition";
    case EventKind::ElectionRound:
      return "election_round";
    case EventKind::FaultInjected:
      return "fault_injected";
    case EventKind::RobotCrashed:
      return "robot_crashed";
    case EventKind::RunEnd:
      return "run_end";
    case EventKind::RunTimeout:
      return "run_timeout";
    case EventKind::RunRetried:
      return "run_retried";
    case EventKind::RunQuarantined:
      return "run_quarantined";
    case EventKind::Checkpoint:
      return "checkpoint";
    case EventKind::BatchScheduled:
      return "batch_scheduled";
    case EventKind::EstimateConverged:
      return "estimate_converged";
  }
  return "?";
}

const char* faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::None:
      return "none";
    case FaultKind::Crash:
      return "crash";
    case FaultKind::SensorNoise:
      return "sensor_noise";
    case FaultKind::SensorOmission:
      return "sensor_omission";
    case FaultKind::MultiplicityFlip:
      return "multiplicity_flip";
    case FaultKind::ComputeDrop:
      return "compute_drop";
    case FaultKind::ComputeTruncate:
      return "compute_truncate";
  }
  return "?";
}

std::string toJsonLine(const Event& e) {
  const bool supervisor = e.kind == EventKind::RunTimeout ||
                          e.kind == EventKind::RunRetried ||
                          e.kind == EventKind::RunQuarantined ||
                          e.kind == EventKind::Checkpoint ||
                          e.kind == EventKind::BatchScheduled ||
                          e.kind == EventKind::EstimateConverged;
  JsonObjectWriter w;
  w.field("ev", eventKindName(e.kind));
  w.field("i", e.index);
  if (supervisor) {
    // Campaign-item scope: the engine-run fields (t_ns/sched_ev/cfg) carry
    // no information here and would make supervised logs nondeterministic.
    w.field("item", e.robot);
  } else {
    w.field("t_ns", e.wallNanos);
    w.field("sched_ev", e.schedEvent);
    w.field("cfg", e.configVersion);
    if (e.robot >= 0) w.field("robot", e.robot);
  }
  switch (e.kind) {
    case EventKind::Compute:
      w.field("phase", e.phaseTag);
      w.field("bits", e.bitsUsed);
      w.field("stale", e.staleness);
      if (e.durNanos != 0) w.field("dur_ns", e.durNanos);
      break;
    case EventKind::ElectionRound:
      w.field("phase", e.phaseTag);
      w.field("bits", e.bitsUsed);
      break;
    case EventKind::CycleComplete:
      w.field("phase", e.phaseTag);
      break;
    case EventKind::PhaseTransition:
      w.field("phase", e.phaseTag);
      w.field("phase_from", e.phaseFrom);
      break;
    case EventKind::MoveStep:
      w.field("phase", e.phaseTag);
      w.field("dist", e.distance);
      w.field("done", e.flag);
      break;
    case EventKind::FaultInjected:
      w.field("fault", faultKindName(e.faultKind));
      if (e.distance != 0.0) w.field("mag", e.distance);
      break;
    case EventKind::RobotCrashed:
      w.field("fault", faultKindName(e.faultKind));
      break;
    case EventKind::RunEnd:
      w.field("dist", e.distance);
      w.field("success", e.flag);
      break;
    case EventKind::RunTimeout:
      w.field("attempt", e.phaseTag);
      w.field("at_cycles", e.bitsUsed);
      w.field("wall", e.flag);
      break;
    case EventKind::RunRetried:
      w.field("attempt", e.phaseTag);
      w.field("salt", e.bitsUsed);
      break;
    case EventKind::RunQuarantined:
      w.field("attempts", e.phaseTag);
      w.field("deterministic", e.flag);
      break;
    case EventKind::Checkpoint:
      w.field("bytes", e.bitsUsed);
      break;
    case EventKind::BatchScheduled:
      // item = batch index; the batch covers samples
      // [first_sample, first_sample + size).
      w.field("first_sample", e.schedEvent);
      w.field("size", e.bitsUsed);
      break;
    case EventKind::EstimateConverged:
      // item = batches consumed; samples = total trials at the stop.
      w.field("samples", e.schedEvent);
      break;
    case EventKind::RunStart:
    case EventKind::Look:
      break;
  }
  return w.str();
}

JsonlRecorder::JsonlRecorder(const std::string& path) : path_(path) {
  createParentDirs(path);
  file_.open(path);
  if (!file_) {
    throw std::runtime_error("JsonlRecorder: cannot open for write: " + path);
  }
  os_ = &file_;
}

JsonlRecorder::JsonlRecorder(std::ostream& os) : os_(&os) {}

JsonlRecorder::~JsonlRecorder() {
  // Flush destructor-side so short-lived sinks still land on disk, but
  // never throw from a destructor.
  if (os_ != nullptr) os_->flush();
}

void JsonlRecorder::record(const Event& event) {
  *os_ << toJsonLine(event) << '\n';
  if (os_->fail()) {
    throw std::runtime_error("JsonlRecorder: write failed" +
                             (path_.empty() ? std::string()
                                            : ": " + path_));
  }
}

void JsonlRecorder::flush() {
  os_->flush();
  if (os_->fail()) {
    throw std::runtime_error("JsonlRecorder: flush failed" +
                             (path_.empty() ? std::string()
                                            : ": " + path_));
  }
}

}  // namespace apf::obs
