#include "obs/alloc.h"

namespace apf::obs {

// Weak fallbacks: linked into apf_obs so every target compiles, overridden
// by the strong definitions in alloc_hook.cpp in executables that opt into
// allocation counting. Weak symbols keep the choice a pure link-time one —
// no macros, no build-flag coupling, zero cost when not opted in.
__attribute__((weak)) bool allocCountingActive() { return false; }

__attribute__((weak)) AllocStats allocStats() { return {}; }

}  // namespace apf::obs
