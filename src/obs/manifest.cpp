#include "obs/manifest.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/recorder.h"

namespace apf::obs {

void Manifest::put(const std::string& key, std::string encoded) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(encoded);
      return;
    }
  }
  entries_.emplace_back(key, std::move(encoded));
}

void Manifest::set(const std::string& key, const std::string& value) {
  // Built via append rather than operator+ chaining: GCC 12's -Wrestrict
  // false-fires on the temporary concatenation at -O3 (PR105329).
  std::string enc;
  enc.reserve(value.size() + 2);
  enc += '"';
  enc += jsonEscape(value);
  enc += '"';
  put(key, std::move(enc));
}

void Manifest::set(const std::string& key, const char* value) {
  set(key, std::string(value));
}

void Manifest::set(const std::string& key, double value) {
  put(key, jsonNumber(value));
}

void Manifest::set(const std::string& key, std::uint64_t value) {
  put(key, std::to_string(value));
}

void Manifest::set(const std::string& key, int value) {
  put(key, std::to_string(value));
}

void Manifest::set(const std::string& key, bool value) {
  put(key, value ? "true" : "false");
}

void Manifest::merge(const Manifest& other) {
  for (const auto& [k, v] : other.entries_) put(k, v);
}

const std::string* Manifest::findEncoded(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Manifest::toJson() const {
  JsonObjectWriter w;
  for (const auto& [k, v] : entries_) w.rawField(k, v);
  return w.str();
}

void Manifest::write(const std::string& path) const {
  createParentDirs(path);
  std::ofstream os(path);
  if (!os) throw std::runtime_error("Manifest: cannot open for write: " + path);
  os << toJson() << '\n';
  os.flush();
  if (os.fail()) throw std::runtime_error("Manifest: write failed: " + path);
}

void addBuildInfo(Manifest& m) {
  m.set("schema", Manifest::kSchemaVersion);
#if defined(__VERSION__)
  m.set("build.compiler", __VERSION__);
#else
  m.set("build.compiler", "unknown");
#endif
  m.set("build.cxx_standard",
        static_cast<std::uint64_t>(__cplusplus));
#if defined(NDEBUG)
  m.set("build.assertions", false);
#else
  m.set("build.assertions", true);
#endif
}

JsonObject loadFlatJsonFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  auto obj = parseFlatObject(buf.str());
  if (!obj) throw std::runtime_error("malformed flat JSON: " + path);
  return *std::move(obj);
}

}  // namespace apf::obs
