#pragma once

/// \file stats.h
/// Counters, wall-time accumulators, and fixed-bucket histograms for the
/// observability layer, plus a name-keyed Registry. All types are plain
/// values (copyable, no locks, no allocation on the update path) so they
/// can live inside `sim::Metrics` and be returned by value with a
/// `RunResult`.

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace apf::obs {

/// Steady-clock nanoseconds (monotonic; origin unspecified).
std::uint64_t nowNanos();

/// Monotonic counter.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Wall-time accumulator: total nanoseconds across `count` timed sections.
class Timer {
 public:
  void add(std::uint64_t nanos) {
    nanos_ += nanos;
    count_ += 1;
  }
  std::uint64_t nanos() const { return nanos_; }
  std::uint64_t count() const { return count_; }
  double meanNanos() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(nanos_) /
                             static_cast<double>(count_);
  }

  /// RAII scope: adds the elapsed wall time on destruction.
  class Scope {
   public:
    explicit Scope(Timer& timer) : timer_(timer), start_(nowNanos()) {}
    ~Scope() { timer_.add(nowNanos() - start_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Timer& timer_;
    std::uint64_t start_;
  };

 private:
  std::uint64_t nanos_ = 0;
  std::uint64_t count_ = 0;
};

/// Fixed-bucket histogram of unsigned values with power-of-two bucket
/// boundaries: bucket 0 counts v == 0, bucket k (k >= 1) counts
/// v in [2^(k-1), 2^k). Values beyond the last boundary clamp into the
/// final bucket. Fixed layout means zero configuration, zero allocation,
/// and mergeable across runs.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 24;

  void add(std::uint64_t v);
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  std::uint64_t bucket(std::size_t k) const { return buckets_[k]; }
  /// Inclusive upper bound of bucket k (2^k - 1; 0 for bucket 0).
  static std::uint64_t bucketUpperBound(std::size_t k);
  /// Upper bound of the bucket containing quantile q in [0, 1]; this is a
  /// conservative (over-)estimate given bucket resolution.
  std::uint64_t quantileUpperBound(double q) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Name-keyed registry of the three instrument types. Instruments are
/// created on first access and live as long as the registry; iteration is
/// in lexicographic name order (std::map), which keeps dumps stable.
class Registry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Timer& timer(const std::string& name) { return timers_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Timer>& timers() const { return timers_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Timer> timers_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace apf::obs
