#pragma once

/// \file manifest.h
/// Run manifests: a flat, ordered key → scalar document written alongside
/// every run/bench output, capturing *everything needed to reproduce the
/// run* (seed, full engine + scheduler options, algorithm, pattern, n,
/// build info) plus the result summary. Serialized as one flat JSON object
/// so `apf_report` (and any scripting language) can ingest it with the
/// parser in json.h.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace apf::obs {

class Manifest {
 public:
  /// Telemetry schema version; bump when keys change meaning.
  static constexpr int kSchemaVersion = 1;

  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, const char* value);
  void set(const std::string& key, double value);
  void set(const std::string& key, std::uint64_t value);
  void set(const std::string& key, int value);
  void set(const std::string& key, bool value);

  /// Last value set for `key`, or nullptr. Values are returned in their
  /// JSON encoding (strings include quotes).
  const std::string* findEncoded(const std::string& key) const;

  /// Copies every entry of `other` into this manifest (same overwrite
  /// semantics as set()). Lets producers fold a prepared block of keys —
  /// e.g. `campaign.*` pool statistics — into an output manifest.
  void merge(const Manifest& other);

  /// Single-line JSON object, keys in insertion order.
  std::string toJson() const;

  /// Writes toJson() + newline; throws std::runtime_error on failure.
  void write(const std::string& path) const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  void put(const std::string& key, std::string encoded);
  /// key → JSON-encoded value, insertion-ordered; later set() of the same
  /// key overwrites in place.
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Adds `schema`, compiler, C++ standard, and optimization info under
/// `build.*` keys. Every manifest producer calls this so logs from
/// different binaries stay comparable.
void addBuildInfo(Manifest& manifest);

/// Reads and parses a manifest (or any flat JSON) file; throws
/// std::runtime_error on open/parse failure.
JsonObject loadFlatJsonFile(const std::string& path);

}  // namespace apf::obs
