#pragma once

/// \file json.h
/// Minimal JSON support for the observability layer: an escaping writer for
/// single-line (JSONL) objects and a parser for the *flat* objects this
/// repository emits (string / number / bool values, no nesting). Both ends
/// of the telemetry pipe — sinks in `recorder.h` / `manifest.h` and the
/// `apf_report` aggregator — go through this file, so the dialect stays
/// consistent by construction.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace apf::obs {

/// Escapes a string for inclusion inside JSON double quotes.
std::string jsonEscape(std::string_view s);

/// Formats a double as a JSON number (shortest round-trip form; never
/// produces NaN/Inf — those are clamped to 0, JSON has no spelling for
/// them).
std::string jsonNumber(double v);

/// Incrementally builds one single-line JSON object.
class JsonObjectWriter {
 public:
  void field(std::string_view key, std::string_view value);  ///< string
  void field(std::string_view key, const char* value);       ///< string
  void field(std::string_view key, double value);
  void field(std::string_view key, std::uint64_t value);
  void field(std::string_view key, std::int64_t value);
  void field(std::string_view key, int value);
  void field(std::string_view key, bool value);
  /// Value already encoded as JSON (nested object, array, ...).
  void rawField(std::string_view key, std::string_view json);

  /// Returns `{"k":v,...}`. The writer may keep being appended to.
  std::string str() const;

 private:
  void key(std::string_view k);
  std::string body_;
};

/// One parsed scalar value of a flat JSON object.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;

  double asNumber(double fallback = 0.0) const {
    return kind == Kind::Number ? number : fallback;
  }
  std::string asString(const std::string& fallback = "") const {
    return kind == Kind::String ? string : fallback;
  }
  bool asBool(bool fallback = false) const {
    return kind == Kind::Bool ? boolean : fallback;
  }
};

using JsonObject = std::map<std::string, JsonValue, std::less<>>;

/// Parses one flat JSON object (`{"k": <scalar>, ...}`). Nested objects and
/// arrays are rejected (returns nullopt) — the telemetry dialect is flat on
/// purpose so every consumer stays trivial.
std::optional<JsonObject> parseFlatObject(std::string_view text);

/// One node of a fully general JSON document. The flat dialect above stays
/// the interchange format for manifests and event logs; this tree form
/// exists for the few documents that are nested by an external schema —
/// `BENCH_perf.json` (array of workload objects, read by `apf_bench_diff`)
/// and Chrome trace-event files (validated structurally by tests).
struct JsonNode {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  /// String value — or, for Number nodes produced by parseJson, the raw
  /// source token (so 64-bit integers can be recovered without the 2^53
  /// double rounding; see asU64).
  std::string string;
  std::vector<JsonNode> items;  ///< Array elements, in order.
  /// Object members, in document order (duplicate keys are kept).
  std::vector<std::pair<std::string, JsonNode>> members;

  /// First member with `key`, or nullptr (objects only).
  const JsonNode* find(std::string_view key) const;
  double asNumber(double fallback = 0.0) const {
    return kind == Kind::Number ? number : fallback;
  }
  std::string asString(const std::string& fallback = "") const {
    return kind == Kind::String ? string : fallback;
  }
  bool asBool(bool fallback = false) const {
    return kind == Kind::Bool ? boolean : fallback;
  }
  /// Exact unsigned 64-bit read of a Number node (via the raw token);
  /// `fallback` for non-numbers and tokens that are not plain unsigned
  /// integers.
  std::uint64_t asU64(std::uint64_t fallback = 0) const;
};

/// Parses an arbitrary JSON document (object/array/scalar root, any
/// nesting). Returns nullopt on malformed input or trailing garbage.
std::optional<JsonNode> parseJson(std::string_view text);

}  // namespace apf::obs
