#include "obs/stats.h"

#include <algorithm>
#include <bit>
#include <chrono>

namespace apf::obs {

std::uint64_t nowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Histogram::add(std::uint64_t v) {
  // bit_width(0) == 0, bit_width(1) == 1, bit_width([2^(k-1), 2^k)) == k.
  const std::size_t k = std::min<std::size_t>(std::bit_width(v),
                                              kBuckets - 1);
  buckets_[k] += 1;
  count_ += 1;
  sum_ += v;
  max_ = std::max(max_, v);
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t k = 0; k < kBuckets; ++k) buckets_[k] += other.buckets_[k];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::bucketUpperBound(std::size_t k) {
  if (k == 0) return 0;
  return (std::uint64_t{1} << k) - 1;
}

std::uint64_t Histogram::quantileUpperBound(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    seen += buckets_[k];
    if (seen >= target) {
      // The last bucket is open-ended; report the observed max there.
      return k == kBuckets - 1 ? max_
                               : std::min(max_, bucketUpperBound(k));
    }
  }
  return max_;
}

}  // namespace apf::obs
