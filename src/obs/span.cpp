#include "obs/span.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/json.h"
#include "obs/recorder.h"

namespace apf::obs {

namespace detail {
std::atomic<SpanCollector*> g_spanCollector{nullptr};
}  // namespace detail

namespace {

// Generation counter distinguishing successive install()s: a thread's
// cached buffer pointer is only valid for the generation it registered
// under, so a re-installed (or different) collector can never be handed a
// stale buffer belonging to a destroyed one.
std::atomic<std::uint64_t> g_generation{0};
thread_local void* t_buf = nullptr;
thread_local std::uint64_t t_generation = 0;

}  // namespace

SpanCollector::SpanCollector(std::size_t maxSpansPerThread)
    : maxPerThread_(std::max<std::size_t>(1, maxSpansPerThread)) {}

SpanCollector::~SpanCollector() {
  if (current() == this) uninstall();
}

void SpanCollector::install() {
  g_generation.fetch_add(1, std::memory_order_relaxed);
  detail::g_spanCollector.store(this, std::memory_order_release);
}

void SpanCollector::uninstall() {
  detail::g_spanCollector.store(nullptr, std::memory_order_release);
  g_generation.fetch_add(1, std::memory_order_relaxed);
}

SpanCollector::ThreadBuf& SpanCollector::threadBuf() {
  const std::uint64_t gen = g_generation.load(std::memory_order_relaxed);
  if (t_buf != nullptr && t_generation == gen) {
    return *static_cast<ThreadBuf*>(t_buf);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto buf = std::make_unique<ThreadBuf>();
  buf->tid = static_cast<int>(threads_.size());
  buf->spans.reserve(1024);
  threads_.push_back(std::move(buf));
  t_buf = threads_.back().get();
  t_generation = gen;
  return *threads_.back().get();
}

void SpanCollector::append(const Span& span) {
  ThreadBuf& buf = threadBuf();
  if (buf.spans.size() >= maxPerThread_) {
    buf.dropped += 1;
    return;
  }
  buf.spans.push_back(span);
}

std::vector<Span> SpanCollector::snapshot() const {
  std::vector<Span> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t total = 0;
    for (const auto& t : threads_) total += t->spans.size();
    all.reserve(total);
    for (const auto& t : threads_) {
      all.insert(all.end(), t->spans.begin(), t->spans.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Span& a, const Span& b) {
                     return a.startNanos < b.startNanos;
                   });
  return all;
}

std::uint64_t SpanCollector::droppedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& t : threads_) dropped += t->dropped;
  return dropped;
}

std::size_t SpanCollector::threadCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_.size();
}

void SpanCollector::writeChromeTrace(std::ostream& os) const {
  // Spans are re-collected per thread (not via snapshot()) so each event
  // carries the tid of the recording thread.
  struct Tagged {
    Span span;
    int tid;
  };
  std::vector<Tagged> all;
  std::size_t nThreads = 0;
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    nThreads = threads_.size();
    std::size_t total = 0;
    for (const auto& t : threads_) total += t->spans.size();
    all.reserve(total);
    for (const auto& t : threads_) {
      dropped += t->dropped;
      for (const Span& s : t->spans) all.push_back({s, t->tid});
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.span.startNanos < b.span.startNanos;
                   });
  // Normalize to the earliest start so timestamps are small; Chrome's
  // trace-event format wants microseconds (fractional allowed).
  const std::uint64_t origin = all.empty() ? 0 : all.front().span.startNanos;
  auto micros = [origin](std::uint64_t nanos, bool relative) {
    const std::uint64_t base = relative ? nanos - origin : nanos;
    return static_cast<double>(base) / 1000.0;
  };

  os << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata events let Perfetto label the tracks.
  for (std::size_t t = 0; t < nThreads; ++t) {
    JsonObjectWriter w;
    w.field("ph", "M");
    w.field("name", "thread_name");
    w.field("pid", 1);
    w.field("tid", static_cast<std::int64_t>(t));
    JsonObjectWriter args;
    args.field("name", t == 0 ? std::string("main")
                              : "worker-" + std::to_string(t));
    w.rawField("args", args.str());
    os << (first ? "" : ",") << "\n" << w.str();
    first = false;
  }
  for (const Tagged& e : all) {
    JsonObjectWriter w;
    w.field("name", e.span.name == nullptr ? "?" : e.span.name);
    w.field("cat", e.span.cat == nullptr ? "" : e.span.cat);
    w.field("ph", "X");
    w.field("pid", 1);
    w.field("tid", static_cast<std::int64_t>(e.tid));
    w.field("ts", micros(e.span.startNanos, /*relative=*/true));
    w.field("dur", micros(e.span.durNanos, /*relative=*/false));
    if (e.span.arg1Name != nullptr || e.span.arg2Name != nullptr) {
      JsonObjectWriter args;
      if (e.span.arg1Name != nullptr) {
        args.field(e.span.arg1Name, e.span.arg1);
      }
      if (e.span.arg2Name != nullptr) {
        args.field(e.span.arg2Name, e.span.arg2);
      }
      w.rawField("args", args.str());
    }
    os << (first ? "" : ",") << "\n" << w.str();
    first = false;
  }
  JsonObjectWriter other;
  other.field("span_count", static_cast<std::uint64_t>(all.size()));
  other.field("dropped_spans", dropped);
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":" << other.str()
     << "}\n";
}

void SpanCollector::writeChromeTrace(const std::string& path) const {
  createParentDirs(path);
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("SpanCollector: cannot open for write: " + path);
  }
  writeChromeTrace(os);
  os.flush();
  if (!os) {
    throw std::runtime_error("SpanCollector: write failed: " + path);
  }
}

}  // namespace apf::obs
