#include "obs/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace apf::obs {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  // %.17g round-trips doubles; trim to the shortest form that still does.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonObjectWriter::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += jsonEscape(k);
  body_ += "\":";
}

void JsonObjectWriter::field(std::string_view k, std::string_view v) {
  key(k);
  body_ += '"';
  body_ += jsonEscape(v);
  body_ += '"';
}

void JsonObjectWriter::field(std::string_view k, const char* v) {
  field(k, std::string_view(v));
}

void JsonObjectWriter::field(std::string_view k, double v) {
  key(k);
  body_ += jsonNumber(v);
}

void JsonObjectWriter::field(std::string_view k, std::uint64_t v) {
  key(k);
  body_ += std::to_string(v);
}

void JsonObjectWriter::field(std::string_view k, std::int64_t v) {
  key(k);
  body_ += std::to_string(v);
}

void JsonObjectWriter::field(std::string_view k, int v) {
  field(k, static_cast<std::int64_t>(v));
}

void JsonObjectWriter::field(std::string_view k, bool v) {
  key(k);
  body_ += v ? "true" : "false";
}

void JsonObjectWriter::rawField(std::string_view k, std::string_view json) {
  key(k);
  body_ += json;
}

std::string JsonObjectWriter::str() const { return "{" + body_ + "}"; }

namespace {

void skipWs(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
}

bool parseString(std::string_view s, std::size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out.clear();
  while (i < s.size()) {
    const char c = s[i++];
    if (c == '"') return true;
    if (c == '\\') {
      if (i >= s.size()) return false;
      const char e = s[i++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (i + 4 > s.size()) return false;
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s[i++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // Telemetry only escapes control characters, so a one-byte
          // mapping is enough; other code points pass through UTF-8 raw.
          out += static_cast<char>(code & 0xFF);
          break;
        }
        default:
          return false;
      }
    } else {
      out += c;
    }
  }
  return false;
}

bool parseValue(std::string_view s, std::size_t& i, JsonValue& out) {
  skipWs(s, i);
  if (i >= s.size()) return false;
  const char c = s[i];
  if (c == '"') {
    out.kind = JsonValue::Kind::String;
    return parseString(s, i, out.string);
  }
  if (c == 't' && s.substr(i, 4) == "true") {
    out.kind = JsonValue::Kind::Bool;
    out.boolean = true;
    i += 4;
    return true;
  }
  if (c == 'f' && s.substr(i, 5) == "false") {
    out.kind = JsonValue::Kind::Bool;
    out.boolean = false;
    i += 5;
    return true;
  }
  if (c == 'n' && s.substr(i, 4) == "null") {
    out.kind = JsonValue::Kind::Null;
    i += 4;
    return true;
  }
  if (c == '-' || (c >= '0' && c <= '9')) {
    std::size_t j = i;
    while (j < s.size() && (s[j] == '-' || s[j] == '+' || s[j] == '.' ||
                            s[j] == 'e' || s[j] == 'E' ||
                            (s[j] >= '0' && s[j] <= '9'))) {
      ++j;
    }
    const std::string tok(s.substr(i, j - i));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return false;
    out.kind = JsonValue::Kind::Number;
    out.number = v;
    out.string = tok;  // raw token, so 64-bit integers survive exactly
    i = j;
    return true;
  }
  return false;  // nested objects/arrays are not part of the dialect
}

// Recursive-descent parser for the general tree form. Depth is bounded to
// keep adversarial inputs from exhausting the stack; the documents this
// repository reads are at most three levels deep.
constexpr int kMaxDepth = 64;

bool parseNode(std::string_view s, std::size_t& i, JsonNode& out, int depth) {
  if (depth > kMaxDepth) return false;
  skipWs(s, i);
  if (i >= s.size()) return false;
  const char c = s[i];
  if (c == '{') {
    ++i;
    out.kind = JsonNode::Kind::Object;
    skipWs(s, i);
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    while (true) {
      skipWs(s, i);
      std::string key;
      if (!parseString(s, i, key)) return false;
      skipWs(s, i);
      if (i >= s.size() || s[i] != ':') return false;
      ++i;
      JsonNode value;
      if (!parseNode(s, i, value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skipWs(s, i);
      if (i >= s.size()) return false;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == '}') {
        ++i;
        return true;
      }
      return false;
    }
  }
  if (c == '[') {
    ++i;
    out.kind = JsonNode::Kind::Array;
    skipWs(s, i);
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    while (true) {
      JsonNode item;
      if (!parseNode(s, i, item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      skipWs(s, i);
      if (i >= s.size()) return false;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == ']') {
        ++i;
        return true;
      }
      return false;
    }
  }
  JsonValue scalar;
  if (!parseValue(s, i, scalar)) return false;
  switch (scalar.kind) {
    case JsonValue::Kind::Null:
      out.kind = JsonNode::Kind::Null;
      break;
    case JsonValue::Kind::Bool:
      out.kind = JsonNode::Kind::Bool;
      out.boolean = scalar.boolean;
      break;
    case JsonValue::Kind::Number:
      out.kind = JsonNode::Kind::Number;
      out.number = scalar.number;
      out.string = std::move(scalar.string);  // raw token
      break;
    case JsonValue::Kind::String:
      out.kind = JsonNode::Kind::String;
      out.string = std::move(scalar.string);
      break;
  }
  return true;
}

}  // namespace

const JsonNode* JsonNode::find(std::string_view key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t JsonNode::asU64(std::uint64_t fallback) const {
  if (kind != Kind::Number || string.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(string.c_str(), &end, 10);
  if (errno != 0 || end != string.c_str() + string.size()) return fallback;
  return static_cast<std::uint64_t>(v);
}

std::optional<JsonNode> parseJson(std::string_view text) {
  std::size_t i = 0;
  JsonNode root;
  if (!parseNode(text, i, root, 0)) return std::nullopt;
  skipWs(text, i);
  if (i != text.size()) return std::nullopt;
  return root;
}

std::optional<JsonObject> parseFlatObject(std::string_view text) {
  std::size_t i = 0;
  skipWs(text, i);
  if (i >= text.size() || text[i] != '{') return std::nullopt;
  ++i;
  JsonObject obj;
  skipWs(text, i);
  if (i < text.size() && text[i] == '}') {
    ++i;
  } else {
    while (true) {
      skipWs(text, i);
      std::string key;
      if (!parseString(text, i, key)) return std::nullopt;
      skipWs(text, i);
      if (i >= text.size() || text[i] != ':') return std::nullopt;
      ++i;
      JsonValue value;
      if (!parseValue(text, i, value)) return std::nullopt;
      obj[std::move(key)] = std::move(value);
      skipWs(text, i);
      if (i >= text.size()) return std::nullopt;
      if (text[i] == ',') {
        ++i;
        continue;
      }
      if (text[i] == '}') {
        ++i;
        break;
      }
      return std::nullopt;
    }
  }
  skipWs(text, i);
  if (i != text.size()) return std::nullopt;
  return obj;
}

}  // namespace apf::obs
