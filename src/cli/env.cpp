#include "cli/env.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace apf::cli {

int parseJobsValue(const char* value) {
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1) return 0;
  return parsed > 512 ? 512 : static_cast<int>(parsed);
}

int jobsFromEnv() {
  const char* v = std::getenv("APF_JOBS");
  if (v == nullptr || *v == '\0') return 0;
  const int jobs = parseJobsValue(v);
  if (jobs == 0) {
    // Garbage ("abc", "4x", "0", "-2") used to fall through silently, and a
    // typo'd APF_JOBS=l6 quietly ran a different experiment. Warn per
    // resolution; the fallback itself is the caller's.
    std::fprintf(stderr,
                 "apf: ignoring unparsable APF_JOBS=\"%s\" "
                 "(want an integer >= 1); using hardware concurrency\n",
                 v);
  }
  return jobs;
}

bool parseBoolValue(const char* name, const char* value) {
  if (value == nullptr || *value == '\0') return false;
  auto is = [value](const char* s) { return std::strcmp(value, s) == 0; };
  if (is("0") || is("false") || is("off") || is("no")) return false;
  if (is("1") || is("true") || is("on") || is("yes")) return true;
  std::fprintf(stderr,
               "apf: %s=\"%s\" is not a recognized boolean "
               "(use 0/1/true/false/on/off/yes/no); treating as enabled\n",
               name, value);
  return true;  // historical rule: any value not starting with '0' enabled
}

const Env& env() {
  static const Env snapshot = [] {
    Env e;
    e.jobs = jobsFromEnv();
    if (const char* v = std::getenv("APF_RESULTS_DIR");
        v != nullptr && *v != '\0') {
      e.resultsDir = v;
    }
    if (const char* v = std::getenv("APF_OBS_DIR");
        v != nullptr && *v != '\0') {
      e.obsDir = v;
    }
    e.obsEvents = parseBoolValue("APF_OBS_EVENTS",
                                 std::getenv("APF_OBS_EVENTS"));
    e.obsTrace = parseBoolValue("APF_OBS_TRACE",
                                std::getenv("APF_OBS_TRACE"));
    if (const char* v = std::getenv("APF_WORKER");
        v != nullptr && *v != '\0') {
      e.workerPath = v;
    }
    return e;
  }();
  return snapshot;
}

}  // namespace apf::cli
