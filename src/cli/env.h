#pragma once

/// \file env.h
/// The ONE place the `APF_*` environment variables are read, parsed, and
/// validated (docs/API.md has the full table). Before this header every
/// binary re-implemented its own getenv + ad-hoc parse, and the failure
/// mode was always the same: a typo'd APF_JOBS=l6 or APF_OBS_EVENTS=ture
/// silently ran a *different experiment*. Every accessor here warns loudly
/// on stderr when a value is garbage, exactly once per process, and then
/// applies the documented fallback — never a silent zero.
///
/// Variables:
///   APF_JOBS         campaign pool width (integer >= 1, clamped to 512)
///   APF_RESULTS_DIR  bench CSV/manifest output directory (default
///                    "results")
///   APF_OBS_DIR      per-run telemetry directory (unset = telemetry off)
///   APF_OBS_EVENTS   also write per-run JSONL event logs (boolean)
///   APF_OBS_TRACE    capture a Chrome trace of the whole bench (boolean)
///   APF_WORKER       path to the apf_worker binary for sharded campaigns
///                    (default: resolved next to the coordinator binary)
///
/// `env()` snapshots all of them once, on first use. One deliberate
/// exception to the snapshot: sim::campaignJobs re-reads APF_JOBS through
/// jobsFromEnv() on every call, because tests vary the variable between
/// campaigns within one process — that contract predates this struct and
/// is part of campaign.h's documented behavior.

#include <string>

namespace apf::cli {

struct Env {
  /// Parsed APF_JOBS; 0 when unset or unparsable (callers fall back to
  /// hardware concurrency, see sim::campaignJobs).
  int jobs = 0;
  /// APF_RESULTS_DIR, defaulting to "results". Never empty.
  std::string resultsDir = "results";
  /// APF_OBS_DIR; empty = telemetry off.
  std::string obsDir;
  /// APF_OBS_EVENTS (boolean; "0"/"false"/"off"/"no" and unset are off).
  bool obsEvents = false;
  /// APF_OBS_TRACE (same boolean spelling rules).
  bool obsTrace = false;
  /// APF_WORKER; empty = resolve apf_worker next to the current binary.
  std::string workerPath;
};

/// The process-wide snapshot, parsed and validated (loudly) exactly once.
const Env& env();

/// Parses an APF_JOBS-style value: integer >= 1, clamped to 512. Returns 0
/// (without warning) when `value` is null/empty/unparsable — callers that
/// want the loud warning use jobsFromEnv().
int parseJobsValue(const char* value);

/// Re-reads APF_JOBS from the environment: parseJobsValue plus the loud
/// stderr warning on garbage. Returns 0 when unset or invalid. This is the
/// re-reading path sim::campaignJobs is built on; everything else should
/// use env().jobs.
int jobsFromEnv();

/// Boolean env spelling: unset, "", "0", "false", "off", "no" are false;
/// "1", "true", "on", "yes" are true. Anything else warns on stderr and —
/// matching the historical v[0] != '0' rule — counts as true.
bool parseBoolValue(const char* name, const char* value);

}  // namespace apf::cli
