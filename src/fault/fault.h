#pragma once

/// \file fault.h
/// Fault-injection plans for the simulation engine.
///
/// The paper proves psi_RSB + psi_DPF correct under an idealized ASYNC
/// model: robots never fail, Look snapshots are exact, and multiplicity
/// detection (when assumed) is perfect. A FaultPlan deliberately violates
/// those hypotheses one knob at a time so the benchmarks can *measure* how
/// the algorithms degrade instead of only observing that they work when
/// every assumption holds (see docs/FAULTS.md for the mapping from each
/// injector to the paper assumption it breaks):
///
///  * crash-stop faults  — a robot permanently halts at an adversary-chosen
///    scheduler event (pre-Look, or mid-Move exactly on its committed
///    path); it stays visible to all later snapshots. Success is then
///    judged with n-f semantics: the live robots must form the pattern
///    minus some f-point subset.
///  * sensor faults      — Gaussian position noise on every non-self point
///    of a snapshot, probabilistic omission of robots from a snapshot, and
///    multiplicity under/over-count flips.
///  * compute faults     — a computed path is dropped (motor never engages)
///    or truncated below the non-rigid delta guarantee (motor stall).
///
/// Determinism: fault draws come from a dedicated RNG stream seeded from
/// (engine seed, plan seed) — see faultStreamSeed — so the adversary and
/// algorithm streams are untouched. Same engine seed + same plan =>
/// bit-identical run. An empty (default) plan injects nothing, draws
/// nothing, and leaves the engine bit-identical to a fault-free build.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace apf::obs {
class Manifest;
struct JsonNode;
}

namespace apf::fault {

/// One scheduled crash-stop fault. The crash fires at the first scheduler
/// event boundary where the engine's processed-event count reaches
/// `atEvent`; if the run terminates earlier the adversary was too slow and
/// the robot survives.
struct CrashFault {
  std::size_t robot = 0;
  std::uint64_t atEvent = 0;
};

/// A composable, seeded set of fault injectors. Value-semantic: copy it
/// into EngineOptions::fault. All probabilities are per-opportunity
/// (per Look for sensor faults, per move-producing Compute for compute
/// faults) and must lie in [0, 1]; sigma is in global-frame units.
struct FaultPlan {
  std::vector<CrashFault> crashes;

  /// Gaussian noise (std dev, global units) added independently to both
  /// coordinates of every non-self point of every snapshot.
  double noiseSigma = 0.0;
  /// Probability that each non-self robot is omitted from a snapshot.
  double omitProb = 0.0;
  /// Probability per snapshot of one multiplicity miscount: a duplicate
  /// point collapses (under-count) or a random point doubles (over-count).
  double multFlipProb = 0.0;
  /// Probability that a computed path is discarded before the robot ever
  /// moves (the robot still completes its cycle where it stands).
  double dropProb = 0.0;
  /// Probability that a computed path is truncated to a uniform fraction
  /// of its length — possibly below the scheduler's delta, i.e. beyond
  /// what non-rigid movement already allows.
  double truncProb = 0.0;

  /// Seed of the fault RNG stream, mixed with the engine seed.
  std::uint64_t seed = 0;

  bool sensorActive() const {
    return noiseSigma > 0.0 || omitProb > 0.0 || multFlipProb > 0.0;
  }
  bool computeActive() const { return dropProb > 0.0 || truncProb > 0.0; }
  /// False for a default-constructed plan: the engine then skips every
  /// fault hook and the run is bit-identical to a pre-fault build.
  bool active() const {
    return !crashes.empty() || sensorActive() || computeActive();
  }
};

/// Human-readable reason the plan is invalid (probability outside [0, 1],
/// negative or non-finite sigma), or nullopt when the plan is usable.
std::optional<std::string> validate(const FaultPlan& plan);

/// The "adversary chooses" helper used by the CLI, fuzzer, and benchmarks:
/// deterministically picks f distinct victim robots (f clamped to n) and
/// crash events spread over [0, horizon) from `seed`.
FaultPlan planWithRandomCrashes(std::size_t n, int f, std::uint64_t seed,
                                std::uint64_t horizon);

/// Records every FaultPlan field under `fault.*` manifest keys (always —
/// clean runs record zeros so fault and fault-free manifests stay
/// comparable in apf_report).
void appendManifest(const FaultPlan& plan, obs::Manifest& manifest);

/// Nested-JSON serialization of a plan — the "fault" object of a
/// `.repro.json` (sim/shrink.h) and of campaign journals. Every field
/// round-trips exactly: doubles are written in shortest form that parses
/// back bit-identical (obs::jsonNumber), so
/// `planFromJson(parseJson(toJson(p)))` reproduces `p` field for field.
std::string toJson(const FaultPlan& plan);

/// Inverse of toJson. Missing keys keep their defaults and unknown keys
/// are ignored (forward compatibility); throws std::runtime_error when
/// `node` is not an object or a crash entry is malformed.
FaultPlan planFromJson(const obs::JsonNode& node);

/// Mixes the engine seed and plan seed into the fault-stream seed with a
/// splitmix64 finalizer, so the fault stream never aliases the adversary
/// stream even when plan.seed == 0.
std::uint64_t faultStreamSeed(std::uint64_t engineSeed,
                              std::uint64_t planSeed);

}  // namespace apf::fault
