#include "fault/fault.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>
#include <stdexcept>

#include "obs/json.h"
#include "obs/manifest.h"
#include "sched/seed.h"

namespace apf::fault {

namespace {

bool isProb(double p) { return std::isfinite(p) && p >= 0.0 && p <= 1.0; }

using sched::splitmix64;  // shared derivation path (sched/seed.h)

}  // namespace

std::optional<std::string> validate(const FaultPlan& plan) {
  std::ostringstream os;
  if (!std::isfinite(plan.noiseSigma) || plan.noiseSigma < 0.0) {
    os << "fault.noise_sigma must be finite and >= 0, got "
       << plan.noiseSigma;
    return os.str();
  }
  const std::pair<const char*, double> probs[] = {
      {"fault.omit_prob", plan.omitProb},
      {"fault.mult_flip_prob", plan.multFlipProb},
      {"fault.drop_prob", plan.dropProb},
      {"fault.trunc_prob", plan.truncProb},
  };
  for (const auto& [name, p] : probs) {
    if (!isProb(p)) {
      os << name << " must lie in [0, 1], got " << p;
      return os.str();
    }
  }
  return std::nullopt;
}

FaultPlan planWithRandomCrashes(std::size_t n, int f, std::uint64_t seed,
                                std::uint64_t horizon) {
  FaultPlan plan;
  plan.seed = seed;
  if (n == 0 || f <= 0) return plan;
  const std::size_t count = std::min<std::size_t>(static_cast<std::size_t>(f), n);
  std::mt19937_64 rng(splitmix64(seed));
  // Distinct victims via a partial Fisher-Yates over robot indices.
  std::vector<std::size_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t j = k + rng() % (n - k);
    std::swap(ids[k], ids[j]);
    CrashFault c;
    c.robot = ids[k];
    c.atEvent = horizon > 0 ? rng() % horizon : 0;
    plan.crashes.push_back(c);
  }
  std::sort(plan.crashes.begin(), plan.crashes.end(),
            [](const CrashFault& a, const CrashFault& b) {
              return a.atEvent < b.atEvent;
            });
  return plan;
}

void appendManifest(const FaultPlan& plan, obs::Manifest& m) {
  m.set("fault.active", plan.active());
  m.set("fault.crash_count", static_cast<std::uint64_t>(plan.crashes.size()));
  for (std::size_t k = 0; k < plan.crashes.size(); ++k) {
    const std::string prefix = "fault.crash." + std::to_string(k);
    m.set(prefix + ".robot",
          static_cast<std::uint64_t>(plan.crashes[k].robot));
    m.set(prefix + ".at_event", plan.crashes[k].atEvent);
  }
  m.set("fault.noise_sigma", plan.noiseSigma);
  m.set("fault.omit_prob", plan.omitProb);
  m.set("fault.mult_flip_prob", plan.multFlipProb);
  m.set("fault.drop_prob", plan.dropProb);
  m.set("fault.trunc_prob", plan.truncProb);
  m.set("fault.seed", plan.seed);
}

std::string toJson(const FaultPlan& plan) {
  std::string crashes = "[";
  for (std::size_t k = 0; k < plan.crashes.size(); ++k) {
    if (k) crashes += ',';
    obs::JsonObjectWriter c;
    c.field("robot", static_cast<std::uint64_t>(plan.crashes[k].robot));
    c.field("at_event", plan.crashes[k].atEvent);
    crashes += c.str();
  }
  crashes += ']';
  obs::JsonObjectWriter w;
  w.rawField("crashes", crashes);
  w.field("noise_sigma", plan.noiseSigma);
  w.field("omit_prob", plan.omitProb);
  w.field("mult_flip_prob", plan.multFlipProb);
  w.field("drop_prob", plan.dropProb);
  w.field("trunc_prob", plan.truncProb);
  w.field("seed", plan.seed);
  return w.str();
}

FaultPlan planFromJson(const obs::JsonNode& node) {
  if (node.kind != obs::JsonNode::Kind::Object) {
    throw std::runtime_error("FaultPlan: JSON value is not an object");
  }
  FaultPlan plan;
  if (const obs::JsonNode* crashes = node.find("crashes")) {
    if (crashes->kind != obs::JsonNode::Kind::Array) {
      throw std::runtime_error("FaultPlan: \"crashes\" is not an array");
    }
    for (const obs::JsonNode& entry : crashes->items) {
      const obs::JsonNode* robot = entry.find("robot");
      const obs::JsonNode* atEvent = entry.find("at_event");
      if (entry.kind != obs::JsonNode::Kind::Object || robot == nullptr ||
          atEvent == nullptr) {
        throw std::runtime_error(
            "FaultPlan: crash entry needs {\"robot\", \"at_event\"}");
      }
      CrashFault c;
      c.robot = static_cast<std::size_t>(robot->asU64());
      c.atEvent = atEvent->asU64();
      plan.crashes.push_back(c);
    }
  }
  if (const obs::JsonNode* v = node.find("noise_sigma"))
    plan.noiseSigma = v->asNumber();
  if (const obs::JsonNode* v = node.find("omit_prob"))
    plan.omitProb = v->asNumber();
  if (const obs::JsonNode* v = node.find("mult_flip_prob"))
    plan.multFlipProb = v->asNumber();
  if (const obs::JsonNode* v = node.find("drop_prob"))
    plan.dropProb = v->asNumber();
  if (const obs::JsonNode* v = node.find("trunc_prob"))
    plan.truncProb = v->asNumber();
  if (const obs::JsonNode* v = node.find("seed")) plan.seed = v->asU64();
  return plan;
}

std::uint64_t faultStreamSeed(std::uint64_t engineSeed,
                              std::uint64_t planSeed) {
  return splitmix64(splitmix64(engineSeed) ^ planSeed ^
                    0xfa0177c0de5eedull);
}

}  // namespace apf::fault
